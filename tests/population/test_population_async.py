"""Population wire extensions: tier codecs, retry accounting, deadlines.

Covers the three behaviors the flat trainer already had that the sharded
population path gained: upload codecs on every exchange leg (client->edge
and tier->tier), full retry/drop attribution in ``TrafficStats`` when a
tier-exchange target is down, and deadline-driven tier aggregation with
bounded-staleness admission of late child forwards.
"""

import numpy as np

from repro.attacks import make_attack
from repro.core.config import FedMSConfig
from repro.models import SoftmaxRegression
from repro.population import (
    PopulationTrainer,
    make_blob_population,
    make_blob_test_dataset,
)
from repro.population.tiers import TierAggregator
from repro.population.trainer import UPLOAD_TAG, exchange_tag
from repro.simulation.faults import FaultPlan, ServerCrash

POPULATION = 48
FEATURES, CLASSES = 5, 3


def make_config(**overrides):
    kwargs = dict(
        num_clients=POPULATION, num_servers=9, num_byzantine=0, seed=11,
        local_steps=2, batch_size=8, learning_rate=0.1,
        population_size=POPULATION, sample_fraction=0.25,
        tier_spec=(6, 2, 1),
    )
    kwargs.update(overrides)
    return FedMSConfig(**kwargs)


def make_trainer(config=None, *, fault_plan=None, attack=None):
    config = config if config is not None else make_config()
    specs = make_blob_population(
        config.population_size, samples_per_client=16,
        feature_dim=FEATURES, num_classes=CLASSES, seed=config.seed,
        heterogeneity=0.2,
    )
    test = make_blob_test_dataset(num_samples=90, feature_dim=FEATURES,
                                  num_classes=CLASSES, seed=config.seed)
    return PopulationTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(FEATURES, CLASSES,
                                                    rng=rng),
        shard_specs=specs,
        test_dataset=test,
        attack=make_attack(attack) if attack else None,
        fault_plan=fault_plan,
    )


class TestTierCodecs:
    def test_codecs_shrink_every_leg(self):
        with make_trainer(make_config()) as dense:
            dense.run(2)
        chain = ("topk(0.25)", "int8")
        with make_trainer(make_config(upload_codecs=chain)) as coded:
            coded.run(2)
        dense_bytes = dense.network.stats.bytes_by_tag
        coded_bytes = coded.network.stats.bytes_by_tag
        for tag in (UPLOAD_TAG, exchange_tag(1), exchange_tag(2)):
            assert coded_bytes[tag] < dense_bytes[tag], tag
        # The reliable model_fetch control plane stays uncoded.
        assert coded_bytes["model_fetch"] == dense_bytes["model_fetch"]

    def test_fetch_reference_keeps_runs_close(self):
        with make_trainer(make_config()) as dense:
            dense_history = dense.run(4)
        chain = ("topk(0.5)", "int8")
        with make_trainer(make_config(upload_codecs=chain)) as coded:
            coded_history = coded.run(4)
        assert coded_history.final_accuracy is not None
        assert (abs(coded_history.final_accuracy
                    - dense_history.final_accuracy) <= 0.25)

    def test_byzantine_edges_survive_encoding(self):
        config = make_config(tier_byzantine=(1, 0, 0),
                             upload_codecs=("topk(0.5)",))
        with make_trainer(config, attack="sign_flip") as trainer:
            history = trainer.run(3)
        assert len(history) == 3


class TestTierRetryAccounting:
    def crash_plan(self, global_index, start=0, end=None):
        return FaultPlan(crashes=(ServerCrash(global_index, start, end),))

    def test_crashed_edge_charges_upload_drops_and_retries(self):
        # Edge aggregator 0 (global index 0) is down all run: every
        # upload routed to it burns its full retry budget, charged to the
        # upload tag as drops and retries.
        with make_trainer(make_config(),
                          fault_plan=self.crash_plan(0)) as trainer:
            history = trainer.run(2)
        stats = trainer.network.stats
        assert stats.retries_by_tag[UPLOAD_TAG] > 0
        assert stats.dropped_bytes_by_tag[UPLOAD_TAG] > 0
        assert stats.offered_bytes_total > stats.bytes_total
        assert history.total_upload_retries > 0
        assert history.total_upload_failures > 0

    def test_crashed_tier1_parent_charges_exchange_leg(self):
        # tier_spec (6, 2, 1): global index 6 is the first tier-1 parent;
        # its children's forwards drop and retry on the tier1 leg.
        with make_trainer(make_config(),
                          fault_plan=self.crash_plan(6)) as trainer:
            trainer.run(2)
        stats = trainer.network.stats
        tag = exchange_tag(1)
        assert stats.retries_by_tag[tag] > 0
        assert stats.dropped_bytes_by_tag[tag] > 0

    def test_retry_delivers_nothing_extra_when_all_up(self):
        with make_trainer(make_config()) as trainer:
            history = trainer.run(2)
        assert trainer.network.stats.retries_total == 0
        assert history.total_upload_failures == 0


class TestTierDeadlines:
    def test_deadline_beats_barrier_in_simulated_time(self):
        with make_trainer(make_config(straggler_rate=0.3)) as barrier:
            barrier.run(3)
        config = make_config(aggregation_mode="deadline",
                             straggler_rate=0.3)
        with make_trainer(config) as deadline:
            deadline.run(3)
        assert (deadline.history.total_simulated_time_s
                < barrier.history.total_simulated_time_s)

    def test_late_forwards_buffered_then_admitted(self):
        config = make_config(aggregation_mode="deadline",
                             straggler_rate=0.45, max_staleness=1)
        with make_trainer(config) as trainer:
            history = trainer.run(6)
        assert history.total_deadline_missed > 0
        assert history.total_late_admitted > 0

    def test_zero_staleness_blocks_admission(self):
        config = make_config(aggregation_mode="deadline",
                             straggler_rate=0.45, max_staleness=0)
        with make_trainer(config) as trainer:
            history = trainer.run(6)
        assert history.total_late_admitted == 0

    def test_barrier_mode_still_measures_time(self):
        with make_trainer(make_config()) as trainer:
            history = trainer.run(2)
        assert history.total_simulated_time_s is not None
        assert history.total_simulated_time_s > 0
        assert history.total_deadline_missed == 0

    def test_backend_bit_identity_with_everything_on(self):
        def run(backend):
            config = make_config(
                execution_backend=backend, num_workers=2,
                aggregation_mode="deadline", straggler_rate=0.45,
                upload_codecs=("topk(0.5)",),
            )
            with make_trainer(config) as trainer:
                history = trainer.run(4)
                return trainer.global_model_vector, [
                    (r.train_loss, r.simulated_time_s, r.deadline_missed,
                     r.late_admitted) for r in history.records
                ]
        serial_vec, serial_trace = run("serial")
        for backend in ("thread", "process"):
            vec, trace = run(backend)
            assert np.array_equal(serial_vec, vec), backend
            assert serial_trace == trace, backend


class TestTierAggregatorBuffer:
    def make_aggregator(self):
        return TierAggregator(1, 0, global_index=6, trim_budget=0,
                              expected_children=3,
                              initial_model=np.zeros(4))

    def test_no_double_vote(self):
        agg = self.make_aggregator()
        agg.buffer_late(0, 0, np.ones(4))
        # Child 0 made the deadline in round 1: the stale buffer is
        # superseded and discarded, not admitted.
        admitted = agg.take_admissible(1, 1, late_children=frozenset())
        assert admitted == {}
        assert agg.take_admissible(1, 5,
                                   late_children=frozenset({0})) == {}

    def test_admitted_when_late_again(self):
        agg = self.make_aggregator()
        agg.buffer_late(0, 0, np.ones(4))
        admitted = agg.take_admissible(1, 1,
                                       late_children=frozenset({0}))
        assert set(admitted) == {0}
        np.testing.assert_array_equal(admitted[0], np.ones(4))

    def test_staleness_expiry(self):
        agg = self.make_aggregator()
        agg.buffer_late(0, 0, np.ones(4))
        admitted = agg.take_admissible(3, 1,
                                       late_children=frozenset({0}))
        assert admitted == {}

    def test_absent_child_keeps_buffer(self):
        agg = self.make_aggregator()
        agg.buffer_late(0, 1, np.ones(4))
        admitted = agg.take_admissible(
            2, 5, late_children=frozenset({0}),
            absent_children=frozenset({0}),
        )
        assert admitted == {}
        # Next round the child is back and late: the buffer delivers.
        admitted = agg.take_admissible(3, 5,
                                       late_children=frozenset({0}))
        assert set(admitted) == {0}
