"""End-to-end PopulationTrainer behavior.

The determinism tests here are the acceptance criterion of the
population subsystem: the same seed must produce a bit-identical run —
same join/leave trace, same sampled sets, same global model — on the
serial, thread and process execution backends.
"""

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common.errors import ConfigurationError
from repro.core.config import FedMSConfig
from repro.models import SoftmaxRegression
from repro.population import (
    ChurnPlan,
    PopulationTrainer,
    make_blob_population,
    make_blob_test_dataset,
)
from repro.simulation.faults import FaultPlan, ServerCrash

POPULATION = 48
FEATURES, CLASSES = 5, 3


def make_config(**overrides):
    kwargs = dict(
        num_clients=POPULATION, num_servers=9, num_byzantine=0, seed=11,
        local_steps=2, batch_size=8, learning_rate=0.1,
        population_size=POPULATION, sample_fraction=0.25,
        tier_spec=(6, 2, 1), tier_byzantine=(1, 0, 0),
        churn_join_rate=0.15, churn_leave_rate=0.1,
    )
    kwargs.update(overrides)
    return FedMSConfig(**kwargs)


def make_trainer(config=None, *, attack="sign_flip", churn=True,
                 fault_plan=None, num_rounds=4):
    config = config if config is not None else make_config()
    specs = make_blob_population(
        config.population_size or POPULATION, samples_per_client=16,
        feature_dim=FEATURES, num_classes=CLASSES, seed=config.seed,
        heterogeneity=0.2,
    )
    test = make_blob_test_dataset(num_samples=90, feature_dim=FEATURES,
                                  num_classes=CLASSES, seed=config.seed)
    plan = None
    if churn and config.has_churn:
        plan = ChurnPlan.from_config(config, num_rounds=num_rounds,
                                     rng=np.random.default_rng(5))
    return PopulationTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(FEATURES, CLASSES,
                                                    rng=rng),
        shard_specs=specs,
        test_dataset=test,
        attack=make_attack(attack) if attack else None,
        churn_plan=plan,
        fault_plan=fault_plan,
    )


def run_trace(backend, num_rounds=4):
    config = make_config(execution_backend=backend, num_workers=3)
    with make_trainer(config, num_rounds=num_rounds) as trainer:
        history = trainer.run(num_rounds)
        vector = trainer.global_model_vector
    trace = [
        (record.num_active_clients, record.num_sampled_clients,
         tuple(record.churn_events), record.train_loss,
         record.test_accuracy)
        for record in history.records
    ]
    return vector, trace


class TestDeterminismAcrossBackends:
    def test_serial_thread_process_are_bit_identical(self):
        serial_vector, serial_trace = run_trace("serial")
        for backend in ("thread", "process"):
            vector, trace = run_trace(backend)
            assert trace == serial_trace, (
                f"{backend} diverged: churn/sampling/loss trace differs"
            )
            np.testing.assert_array_equal(vector, serial_vector)

    def test_same_seed_same_run(self):
        one_vector, one_trace = run_trace("serial")
        two_vector, two_trace = run_trace("serial")
        assert one_trace == two_trace
        np.testing.assert_array_equal(one_vector, two_vector)


class TestRoundMechanics:
    def test_lazy_materialization_stays_at_sample_size(self):
        with make_trainer() as trainer:
            history = trainer.run(4)
        peak = history.peak_materialized_clients
        sampled = max(r.num_sampled_clients for r in history.records)
        assert peak == sampled
        assert peak < POPULATION / 2
        assert trainer.network.stats.peak_materialized_clients == peak
        # Slots are pooled: never more than the largest cohort.
        assert trainer.population.num_slots <= peak

    def test_traffic_tags_per_leg(self):
        with make_trainer() as trainer:
            trainer.run(3)
            tags = dict(trainer.network.stats.messages_by_tag)
        assert set(tags) == {"model_fetch", "tier0_upload",
                             "tier1_exchange", "tier2_exchange"}
        # Exchange legs depend on aggregator counts, not population size.
        assert tags["tier1_exchange"] == 6 * 3
        assert tags["tier2_exchange"] == 2 * 3

    def test_history_records_population_fields(self):
        with make_trainer() as trainer:
            history = trainer.run(4)
        record = history.records[-1]
        assert record.num_active_clients is not None
        assert record.num_sampled_clients is not None
        assert record.materialized_clients == record.num_sampled_clients
        assert history.total_churn_events == sum(
            len(r.churn_events) for r in history.records
        )

    def test_byzantine_run_stays_close_to_benign(self):
        with make_trainer(attack="sign_flip") as trainer:
            attacked = trainer.run(4).final_accuracy
        with make_trainer(
            make_config(tier_byzantine=None), attack=None
        ) as trainer:
            benign = trainer.run(4).final_accuracy
        assert attacked >= benign - 0.25


class TestFaultIntegration:
    def test_crashed_children_push_parent_below_quorum(self):
        # Tier spec (6, 2, 1), B0=1: tier-1 parent 0 has children
        # {0, 2, 4} and needs q >= 3. Crash edges 0 and 2 (global
        # indices 0 and 2) -> q = 1, so parent 0 (global index 6) must
        # fall back, and the crashed edges are traced as fallbacks too.
        plan = FaultPlan(crashes=(ServerCrash(0, 1), ServerCrash(2, 1)))
        with make_trainer(fault_plan=plan, churn=False) as trainer:
            history = trainer.run(3)
        record = history.records[-1]
        assert 6 in record.tier_fallback_aggregators.get(1, [])
        assert set(record.tier_fallback_aggregators.get(0, [])) == {0, 2}
        assert history.tier_fallback_rounds == [1, 2]
        assert record.alive_servers == 7

    def test_fault_events_recorded(self):
        plan = FaultPlan(crashes=(ServerCrash(1, 1, 2),))
        with make_trainer(fault_plan=plan, churn=False) as trainer:
            history = trainer.run(3)
        assert history.records[1].fault_events == ["server 1 crashed"]
        assert history.records[2].fault_events == ["server 1 recovered"]


class TestValidation:
    def test_requires_population_size(self):
        with pytest.raises(ConfigurationError):
            make_trainer(make_config(population_size=None,
                                     tier_byzantine=None, tier_spec=None))

    def test_requires_tier_spec(self):
        with pytest.raises(ConfigurationError):
            make_trainer(make_config(tier_spec=None, tier_byzantine=None))

    def test_shard_count_must_match_population(self):
        config = make_config()
        specs = make_blob_population(10, samples_per_client=8,
                                     feature_dim=FEATURES,
                                     num_classes=CLASSES, seed=0)
        test = make_blob_test_dataset(num_samples=30, feature_dim=FEATURES,
                                      num_classes=CLASSES, seed=0)
        with pytest.raises(ConfigurationError):
            PopulationTrainer(
                config,
                model_factory=lambda rng: SoftmaxRegression(
                    FEATURES, CLASSES, rng=rng),
                shard_specs=specs, test_dataset=test,
                attack=make_attack("sign_flip"),
            )

    def test_byzantine_budget_requires_attack(self):
        with pytest.raises(ConfigurationError):
            make_trainer(attack=None)

    def test_explicit_byzantine_placement_validated(self):
        config = make_config()
        specs = make_blob_population(POPULATION, samples_per_client=8,
                                     feature_dim=FEATURES,
                                     num_classes=CLASSES, seed=0)
        test = make_blob_test_dataset(num_samples=30, feature_dim=FEATURES,
                                      num_classes=CLASSES, seed=0)
        with pytest.raises(ConfigurationError):
            PopulationTrainer(
                config,
                model_factory=lambda rng: SoftmaxRegression(
                    FEATURES, CLASSES, rng=rng),
                shard_specs=specs, test_dataset=test,
                attack=make_attack("sign_flip"),
                byzantine_tier_ids={0: (0, 1)},  # budget is 1, not 2
            )
