"""Churn plans and the round-by-round scheduler."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import FedMSConfig
from repro.population import ChurnPlan, ChurnScheduler, MembershipWindow


class TestMembershipWindow:
    def test_active_window(self):
        window = MembershipWindow(0, 2, 5)
        assert [window.active(t) for t in range(7)] == [
            False, False, True, True, True, False, False
        ]

    def test_open_ended_window(self):
        window = MembershipWindow(0, 3)
        assert not window.active(2)
        assert window.active(3) and window.active(100)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            MembershipWindow(0, -1)
        with pytest.raises(ConfigurationError):
            MembershipWindow(0, 5, 5)
        with pytest.raises(ConfigurationError):
            MembershipWindow(-1, 0)


class TestChurnPlan:
    def test_clients_without_windows_are_always_active(self):
        plan = ChurnPlan(population_size=4)
        assert plan.is_empty
        assert plan.active_clients(0) == frozenset({0, 1, 2, 3})
        assert plan.active_clients(99) == frozenset({0, 1, 2, 3})

    def test_windowed_membership(self):
        plan = ChurnPlan(population_size=3, windows=(
            MembershipWindow(0, 0, 2),   # leaves at round 2
            MembershipWindow(0, 4),      # rejoins at round 4
            MembershipWindow(2, 1),      # joins late
        ))
        assert plan.active_clients(0) == frozenset({0, 1})
        assert plan.active_clients(1) == frozenset({0, 1, 2})
        assert plan.active_clients(2) == frozenset({1, 2})
        assert plan.active_clients(4) == frozenset({0, 1, 2})

    def test_rejects_out_of_range_client(self):
        with pytest.raises(ConfigurationError):
            ChurnPlan(population_size=2,
                      windows=(MembershipWindow(2, 0),))

    def test_sample_is_deterministic(self):
        kwargs = dict(population_size=50, num_rounds=8, join_rate=0.3,
                      leave_rate=0.2, rejoin_fraction=0.5, dwell_rounds=2)
        one = ChurnPlan.sample(rng=np.random.default_rng(7), **kwargs)
        two = ChurnPlan.sample(rng=np.random.default_rng(7), **kwargs)
        assert one.windows == two.windows

    def test_sample_needs_multiple_rounds(self):
        with pytest.raises(ConfigurationError):
            ChurnPlan.sample(population_size=5, num_rounds=1,
                             rng=np.random.default_rng(0), join_rate=0.5)

    def test_from_config_empty_without_churn(self):
        config = FedMSConfig(num_clients=10, num_servers=5, num_byzantine=0,
                             population_size=10)
        plan = ChurnPlan.from_config(config, num_rounds=5,
                                     rng=np.random.default_rng(0))
        assert plan.is_empty

    def test_from_config_draws_windows(self):
        config = FedMSConfig(num_clients=40, num_servers=5, num_byzantine=0,
                             population_size=40, churn_join_rate=0.5,
                             churn_leave_rate=0.3)
        plan = ChurnPlan.from_config(config, num_rounds=8,
                                     rng=np.random.default_rng(1))
        assert not plan.is_empty
        assert plan.population_size == 40


class TestChurnScheduler:
    def plan(self):
        return ChurnPlan(population_size=3, windows=(
            MembershipWindow(0, 0, 2),
            MembershipWindow(0, 4),
            MembershipWindow(2, 1),
        ))

    def test_first_round_is_silent_baseline(self):
        scheduler = ChurnScheduler(self.plan())
        assert scheduler.begin_round(0) == []
        assert scheduler.active_ids() == [0, 1]

    def test_transition_events_only(self):
        scheduler = ChurnScheduler(self.plan())
        scheduler.begin_round(0)
        assert scheduler.begin_round(1) == ["client 2 joined"]
        assert scheduler.begin_round(2) == ["client 0 left"]
        assert scheduler.begin_round(3) == []          # no transitions
        assert scheduler.begin_round(4) == ["client 0 rejoined"]
        assert scheduler.event_log == [
            (1, "client 2 joined"),
            (2, "client 0 left"),
            (4, "client 0 rejoined"),
        ]

    def test_is_active_tracks_current_round(self):
        scheduler = ChurnScheduler(self.plan())
        scheduler.begin_round(2)
        assert not scheduler.is_active(0)
        assert scheduler.is_active(1)

    def test_same_plan_replays_identically(self):
        plan = ChurnPlan.sample(population_size=30, num_rounds=6,
                                rng=np.random.default_rng(3),
                                join_rate=0.3, leave_rate=0.2)
        traces = []
        for _ in range(2):
            scheduler = ChurnScheduler(plan)
            traces.append([tuple(scheduler.begin_round(t))
                           for t in range(6)])
        assert traces[0] == traces[1]
