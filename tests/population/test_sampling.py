"""Per-round sampling: determinism and edge cases."""

import pytest

from repro.common.errors import ConfigurationError
from repro.population import sample_clients, sample_size


class TestSampleSize:
    def test_rounds_the_fraction(self):
        assert sample_size(100, 0.1) == 10
        assert sample_size(25, 0.1) == 2  # round(2.5) banker's -> 2

    def test_at_least_one_when_any_active(self):
        assert sample_size(3, 0.01) == 1

    def test_zero_when_none_active(self):
        assert sample_size(0, 0.5) == 0

    def test_full_participation(self):
        assert sample_size(7, 1.0) == 7


class TestSampleClients:
    def test_same_seed_and_round_is_identical(self):
        ids = list(range(200))
        one = sample_clients(ids, 0.1, seed=5, round_index=3)
        two = sample_clients(ids, 0.1, seed=5, round_index=3)
        assert one == two

    def test_independent_of_input_order(self):
        ids = list(range(100))
        shuffled = ids[50:] + ids[:50]
        assert (sample_clients(ids, 0.2, seed=1, round_index=0)
                == sample_clients(shuffled, 0.2, seed=1, round_index=0))

    def test_rounds_draw_different_sets(self):
        ids = list(range(500))
        draws = {tuple(sample_clients(ids, 0.05, seed=9, round_index=t))
                 for t in range(5)}
        assert len(draws) == 5

    def test_sampled_ids_come_from_active_set(self):
        active = [3, 17, 42, 99, 250]
        chosen = sample_clients(active, 0.5, seed=0, round_index=2)
        assert set(chosen) <= set(active)
        assert chosen == sorted(chosen)

    def test_empty_active_set(self):
        assert sample_clients([], 0.5, seed=0, round_index=0) == []

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            sample_clients([1, 2], 0.0, seed=0, round_index=0)
        with pytest.raises(ConfigurationError):
            sample_clients([1, 2], 1.5, seed=0, round_index=0)
