"""Tier topology and per-tier Byzantine-filtered aggregation."""

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.filtering import FilterOutcome
from repro.population import TierAggregator, TierTopology


class TestTierTopology:
    def test_counts_must_end_in_one(self):
        with pytest.raises(ConfigurationError):
            TierTopology((8, 2))

    def test_counts_must_be_non_increasing(self):
        with pytest.raises(ConfigurationError):
            TierTopology((2, 4, 1))

    def test_infeasible_byzantine_budget(self):
        # (8, 2, 1): tier-1 parents see 4 children; B=2 needs q >= 5.
        with pytest.raises(ConfigurationError):
            TierTopology((8, 2, 1), byzantine=(2, 0, 0))

    def test_global_tier_must_be_honest(self):
        with pytest.raises(ConfigurationError):
            TierTopology((4, 1), byzantine=(0, 1))

    def test_indices_and_assignment(self):
        topology = TierTopology((6, 2, 1))
        assert topology.num_tiers == 3
        assert topology.total_aggregators == 9
        assert topology.global_index(0, 5) == 5
        assert topology.global_index(1, 1) == 7
        assert topology.global_index(2, 0) == 8
        assert topology.edge_of_client(13) == 1
        assert topology.children_of(1, 0) == [0, 2, 4]
        assert topology.parent_of(0, 3) == 1
        assert topology.min_children(1) == 3

    def test_trim_budgets_per_tier(self):
        topology = TierTopology((10, 2, 1), byzantine=(2, 0, 0))
        assert topology.trim_budget(0) == 0   # clients are trusted
        assert topology.trim_budget(1) == 2   # tolerates tier-0 traitors
        assert topology.trim_budget(2) == 0


def make_aggregator(trim_budget=0, expected=None, dim=4, **kwargs):
    return TierAggregator(
        1, 0, global_index=6, trim_budget=trim_budget,
        expected_children=expected, initial_model=np.zeros(dim), **kwargs
    )


class TestCombine:
    def test_mean_with_zero_budget(self):
        aggregator = make_aggregator()
        outcome = aggregator.combine(
            [np.full(4, 1.0), np.full(4, 3.0)], [0, 1]
        )
        np.testing.assert_allclose(outcome.vector, np.full(4, 2.0))
        assert not outcome.used_fallback

    def test_trimmed_mean_bounds_byzantine_children(self):
        # The tolerance claim at tier granularity: with q = 2B+1 = 5 and
        # B = 2 adversarial children at arbitrary magnitude, every output
        # coordinate stays within the honest children's range.
        aggregator = make_aggregator(trim_budget=2)
        honest = [np.array([1.0, -1.0, 0.5, 2.0]),
                  np.array([1.2, -0.8, 0.4, 2.2]),
                  np.array([0.9, -1.1, 0.6, 1.9])]
        adversarial = [np.full(4, 1e9), np.full(4, -1e9)]
        outcome = aggregator.combine(honest + adversarial, [0, 1, 2, 3, 4])
        stack = np.stack(honest)
        assert np.all(outcome.vector >= stack.min(axis=0) - 1e-12)
        assert np.all(outcome.vector <= stack.max(axis=0) + 1e-12)

    def test_below_quorum_falls_back_to_previous_output(self):
        aggregator = make_aggregator(trim_budget=2, expected=5)
        first = aggregator.combine(
            [np.full(4, float(i)) for i in range(5)], list(range(5))
        )
        # Only 4 of 5 children deliver: q < 2B+1, keep the last output.
        second = aggregator.combine(
            [np.full(4, 100.0)] * 4, [0, 1, 2, 3]
        )
        assert second.used_fallback
        assert second.degraded
        np.testing.assert_array_equal(second.vector, first.vector)
        assert aggregator.rounds_without_quorum == 1

    def test_empty_round_keeps_initial_model(self):
        aggregator = make_aggregator()
        outcome = aggregator.combine([], [])
        assert outcome.used_fallback
        np.testing.assert_array_equal(outcome.vector, np.zeros(4))

    def test_degraded_flag_without_fallback(self):
        aggregator = make_aggregator(trim_budget=1, expected=5)
        outcome = aggregator.combine(
            [np.full(4, float(i)) for i in range(4)], [0, 1, 2, 3]
        )
        assert outcome.degraded and not outcome.used_fallback

    def test_info_fn_maps_rejections_to_child_ids(self):
        def fake_info(stack):
            return FilterOutcome(stack.mean(axis=0), 1, (2,))

        aggregator = make_aggregator(trim_budget=1)
        outcome = aggregator.combine(
            [np.zeros(4)] * 3, [4, 7, 9], info_fn=fake_info
        )
        assert outcome.estimated_byzantine == 1
        assert outcome.rejected_children == (9,)

    def test_tier0_never_applies_info_fn(self):
        called = []

        def fake_info(stack):
            called.append(True)
            return FilterOutcome(stack.mean(axis=0), 0, ())

        edge = TierAggregator(0, 0, global_index=0, trim_budget=0,
                              expected_children=None,
                              initial_model=np.zeros(4))
        edge.combine([np.ones(4)], [0], info_fn=fake_info)
        assert not called

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ProtocolError):
            make_aggregator().combine([np.zeros(4)], [0, 1])


class TestOutgoing:
    def test_honest_forwards_current_output(self):
        aggregator = make_aggregator()
        aggregator.combine([np.full(4, 2.0)], [0])
        forwarded = aggregator.outgoing(0)
        np.testing.assert_array_equal(forwarded, np.full(4, 2.0))
        forwarded[:] = 0.0  # a copy: tampering the wire never mutates state
        np.testing.assert_array_equal(aggregator.current_output,
                                      np.full(4, 2.0))

    def test_byzantine_tampering(self):
        aggregator = make_aggregator(
            attack=make_attack("sign_flip"),
            attack_rng=np.random.default_rng(0),
        )
        aggregator.combine([np.full(4, 2.0)], [0])
        forwarded = aggregator.outgoing(0)
        assert aggregator.is_byzantine
        assert not np.array_equal(forwarded, np.full(4, 2.0))

    def test_byzantine_requires_rng(self):
        with pytest.raises(ConfigurationError):
            make_aggregator(attack=make_attack("sign_flip"))
