"""Tests for Module/Parameter/Sequential plumbing."""

import numpy as np
import pytest

from repro.common import RngFactory, ShapeError
from repro.nn import (
    BatchNorm1d,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)


@pytest.fixture()
def rng():
    return RngFactory(0).make("init")


class TestParameter:
    def test_data_is_float64(self):
        param = Parameter(np.array([1, 2, 3], dtype=np.int32))
        assert param.data.dtype == np.float64

    def test_grad_starts_at_zero(self):
        param = Parameter(np.ones((2, 3)))
        assert param.grad.shape == (2, 3)
        assert np.all(param.grad == 0.0)

    def test_zero_grad_resets_in_place(self):
        param = Parameter(np.ones(4))
        grad_ref = param.grad
        param.grad += 5.0
        param.zero_grad()
        assert param.grad is grad_ref
        assert np.all(param.grad == 0.0)

    def test_size_and_shape(self):
        param = Parameter(np.zeros((3, 5)))
        assert param.size == 15
        assert param.shape == (3, 5)


class TestModuleRegistration:
    def test_parameters_in_registration_order(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 4, rng=rng))
        names = [name for name, _ in net.named_parameters()]
        assert names == [
            "layer0.weight",
            "layer0.bias",
            "layer2.weight",
            "layer2.bias",
        ]

    def test_num_parameters(self, rng):
        net = Linear(4, 5, rng=rng)
        assert net.num_parameters() == 4 * 5 + 5

    def test_no_bias_parameter_absent(self, rng):
        net = Linear(4, 5, bias=False, rng=rng)
        assert [name for name, _ in net.named_parameters()] == ["weight"]

    def test_reassigning_none_unregisters(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer.bias = None
        assert [name for name, _ in layer.named_parameters()] == ["weight"]

    def test_buffers_registered(self):
        bn = BatchNorm1d(3)
        names = [name for name, _ in bn.named_buffers()]
        assert names == ["running_mean", "running_var"]

    def test_modules_traversal_depth_first(self, rng):
        inner = Sequential(Linear(2, 2, rng=rng))
        outer = Sequential(inner, ReLU())
        kinds = [type(m).__name__ for m in outer.modules()]
        assert kinds == ["Sequential", "Sequential", "Linear", "ReLU"]

    def test_set_buffer_rejects_bad_shape(self):
        bn = BatchNorm1d(3)
        with pytest.raises(ShapeError):
            bn.set_buffer("running_mean", np.zeros(4))

    def test_set_buffer_unknown_name(self):
        bn = BatchNorm1d(3)
        with pytest.raises(KeyError):
            bn.set_buffer("nope", np.zeros(3))


class TestTrainEval:
    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), BatchNorm1d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        x = np.ones((4, 2))
        out = net(x)
        net.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in net.parameters())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), BatchNorm1d(4))
        net(np.random.default_rng(1).normal(size=(8, 3)))  # move BN stats
        state = net.state_dict()
        other_rng = RngFactory(99).make("init")
        other = Sequential(Linear(3, 4, rng=other_rng), BatchNorm1d(4))
        other.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(net.named_parameters(), other.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)
        for (n1, b1), (n2, b2) in zip(net.named_buffers(), other.named_buffers()):
            assert n1 == n2
            np.testing.assert_array_equal(b1, b2)

    def test_state_dict_is_a_copy(self, rng):
        net = Linear(2, 2, rng=rng)
        state = net.state_dict()
        state["weight"][...] = 123.0
        assert not np.any(net.weight.data == 123.0)

    def test_missing_key_raises(self, rng):
        net = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            net.load_state_dict({})

    def test_wrong_shape_raises(self, rng):
        net = Linear(2, 2, rng=rng)
        state = net.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ShapeError):
            net.load_state_dict(state)


class TestSequential:
    def test_forward_composition(self, rng):
        net = Sequential(Linear(2, 3, rng=rng), Linear(3, 5, rng=rng))
        assert net(np.zeros((7, 2))).shape == (7, 5)

    def test_len_and_getitem(self, rng):
        first = Linear(2, 3, rng=rng)
        net = Sequential(first, ReLU())
        assert len(net) == 2
        assert net[0] is first

    def test_append(self, rng):
        net = Sequential(Linear(2, 3, rng=rng))
        net.append(Linear(3, 4, rng=rng))
        assert len(net) == 2
        assert net(np.zeros((1, 2))).shape == (1, 4)

    def test_empty_sequential_is_identity(self):
        net = Sequential()
        x = np.ones((2, 2))
        np.testing.assert_array_equal(net(x), x)

    def test_backward_before_forward_raises(self, rng):
        from repro.common import ProtocolError

        net = Linear(2, 2, rng=rng)
        with pytest.raises(ProtocolError):
            net.backward(np.zeros((1, 2)))

    def test_base_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
