"""Tests for the low-level im2col/col2im machinery and softmax helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ShapeError
from repro.nn.functional import (
    col2im_windows,
    conv_output_size,
    im2col_windows,
    log_softmax,
    softmax,
)


class TestConvOutputSize:
    def test_known_values(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_rejects_impossible_geometry(self):
        with pytest.raises(ShapeError):
            conv_output_size(3, 5, 1, 0)


class TestIm2Col:
    def test_window_shape(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        windows = im2col_windows(x, (3, 3), 1, 0)
        assert windows.shape == (2, 3, 3, 3, 3, 3)

    def test_window_content(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        windows = im2col_windows(x, (2, 2), 2, 0)
        # Top-left window is [[0,1],[4,5]].
        np.testing.assert_array_equal(windows[0, 0, :, :, 0, 0],
                                      [[0.0, 1.0], [4.0, 5.0]])
        np.testing.assert_array_equal(windows[0, 0, :, :, 1, 1],
                                      [[10.0, 11.0], [14.0, 15.0]])

    def test_padding_adds_zeros(self):
        x = np.ones((1, 1, 2, 2))
        windows = im2col_windows(x, (3, 3), 1, 1)
        corner = windows[0, 0, :, :, 0, 0]
        assert corner[0, 0] == 0.0  # padded region
        assert corner[1, 1] == 1.0  # original content

    def test_is_contiguous_copy(self):
        x = np.zeros((1, 1, 4, 4))
        windows = im2col_windows(x, (2, 2), 1, 0)
        assert windows.flags["C_CONTIGUOUS"]
        windows[...] = 7.0
        assert np.all(x == 0.0)  # no aliasing

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            im2col_windows(np.zeros((4, 4)), (2, 2), 1, 0)


class TestCol2ImAdjointness:
    """col2im is the exact adjoint of im2col: <im2col(x), y> = <x, col2im(y)>
    for all x, y — the identity that makes the convolution backward passes
    correct by construction."""

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(3, 8),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 2),
        seed=st.integers(0, 2**16),
    )
    def test_adjoint_identity(self, size, kernel, stride, padding, seed):
        if size + 2 * padding < kernel:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, 2, size, size))
        windows = im2col_windows(x, (kernel, kernel), stride, padding)
        y = rng.normal(size=windows.shape)
        lhs = float(np.sum(windows * y))
        back = col2im_windows(y, x.shape, (kernel, kernel), stride, padding)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_kernel_mismatch_rejected(self):
        x_shape = (1, 1, 4, 4)
        windows = np.zeros((1, 1, 2, 2, 3, 3))
        with pytest.raises(ShapeError):
            col2im_windows(windows, x_shape, (3, 3), 1, 0)

    def test_overlap_accumulates(self):
        """Stride-1 windows overlap; col2im must sum contributions."""
        x_shape = (1, 1, 3, 3)
        windows = np.ones((1, 1, 2, 2, 2, 2))
        back = col2im_windows(windows, x_shape, (2, 2), 1, 0)
        # Center pixel belongs to all four windows.
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_log_softmax_consistency(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(log_softmax(logits),
                                   np.log(softmax(logits)), atol=1e-12)

    def test_extreme_values_finite(self):
        logits = np.array([[1e5, -1e5, 0.0]])
        assert np.all(np.isfinite(softmax(logits)))
        assert np.all(np.isfinite(log_softmax(logits)))
