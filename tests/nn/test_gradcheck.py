"""Numerical gradient checks for every layer's backward pass."""

import numpy as np
import pytest

from repro.common import RngFactory
from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sequential,
    Sigmoid,
    Tanh,
    check_layer_gradients,
)

TOLERANCE = 1e-5


@pytest.fixture()
def rng():
    return RngFactory(42).make("gradcheck")


def assert_gradients_match(layer, x, tolerance=TOLERANCE):
    input_error, param_error = check_layer_gradients(layer, x)
    assert input_error < tolerance, f"input gradient error {input_error}"
    assert param_error < tolerance, f"parameter gradient error {param_error}"


class TestDenseLayers:
    def test_linear(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(5, 4)))

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(5, 4)))


class TestConvLayers:
    def test_conv2d_basic(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_conv2d_stride_and_padding(self, rng):
        layer = Conv2d(2, 4, 3, stride=2, padding=1, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(2, 2, 6, 6)))

    def test_conv2d_1x1(self, rng):
        layer = Conv2d(3, 5, 1, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(2, 3, 4, 4)))

    def test_conv2d_no_bias(self, rng):
        layer = Conv2d(2, 2, 3, bias=False, padding=1, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(1, 2, 4, 4)))

    def test_depthwise_basic(self, rng):
        layer = DepthwiseConv2d(3, 3, padding=1, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(2, 3, 5, 5)))

    def test_depthwise_stride2(self, rng):
        layer = DepthwiseConv2d(2, 3, stride=2, padding=1, rng=rng)
        assert_gradients_match(layer, rng.normal(size=(2, 2, 6, 6)))


class TestNormLayers:
    def test_batchnorm1d_training(self, rng):
        layer = BatchNorm1d(4)
        layer.train()
        assert_gradients_match(layer, rng.normal(size=(6, 4)))

    def test_batchnorm1d_eval(self, rng):
        layer = BatchNorm1d(4)
        layer.train()
        layer(rng.normal(size=(6, 4)))  # populate running stats
        layer.eval()
        assert_gradients_match(layer, rng.normal(size=(6, 4)))

    def test_batchnorm2d_training(self, rng):
        layer = BatchNorm2d(3)
        layer.train()
        assert_gradients_match(layer, rng.normal(size=(4, 3, 3, 3)))

    def test_batchnorm2d_eval(self, rng):
        layer = BatchNorm2d(3)
        layer.train()
        layer(rng.normal(size=(4, 3, 3, 3)))
        layer.eval()
        assert_gradients_match(layer, rng.normal(size=(4, 3, 3, 3)))


class TestActivations:
    @pytest.mark.parametrize(
        "layer_factory",
        [ReLU, ReLU6, lambda: LeakyReLU(0.1), Tanh, Sigmoid],
        ids=["relu", "relu6", "leaky_relu", "tanh", "sigmoid"],
    )
    def test_activation(self, rng, layer_factory):
        layer = layer_factory()
        # Shift away from the kink points (0 for ReLU-family, 6 for ReLU6)
        # where finite differences are ill-defined.
        x = rng.normal(size=(4, 5)) * 2.0
        x[np.abs(x) < 0.05] += 0.1
        x[np.abs(x - 6.0) < 0.05] += 0.1
        assert_gradients_match(layer, x)


class TestPooling:
    def test_maxpool(self, rng):
        layer = MaxPool2d(2)
        # Unique values avoid argmax ties which break finite differences.
        x = rng.permutation(np.arange(2 * 2 * 4 * 4, dtype=float)).reshape(2, 2, 4, 4)
        assert_gradients_match(layer, x)

    def test_maxpool_stride1(self, rng):
        layer = MaxPool2d(2, stride=1)
        x = rng.permutation(np.arange(1 * 2 * 4 * 4, dtype=float)).reshape(1, 2, 4, 4)
        assert_gradients_match(layer, x)

    def test_avgpool(self, rng):
        layer = AvgPool2d(2)
        assert_gradients_match(layer, rng.normal(size=(2, 3, 4, 4)))

    def test_global_avgpool(self, rng):
        layer = GlobalAvgPool2d()
        assert_gradients_match(layer, rng.normal(size=(2, 3, 5, 5)))


class TestShapeOps:
    def test_flatten(self, rng):
        layer = Flatten()
        assert_gradients_match(layer, rng.normal(size=(3, 2, 4, 4)))


class TestComposite:
    def test_small_cnn_stack(self, rng):
        net = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 2 * 2, 3, rng=rng),
        )
        x = rng.permutation(np.arange(2 * 1 * 4 * 4, dtype=float)).reshape(2, 1, 4, 4)
        x = x / x.size  # keep activations in a smooth range
        assert_gradients_match(net, x)
