"""Tests for classification metrics and model checkpointing."""

import numpy as np
import pytest

from repro.common import RngFactory, ShapeError
from repro.nn import (
    BatchNorm1d,
    Linear,
    Sequential,
    checkpoint_metadata,
    classification_report,
    confusion_matrix,
    load_checkpoint,
    macro_f1,
    per_class_accuracy,
    save_checkpoint,
    to_vector,
    top_k_accuracy,
)


def perfect_logits(labels, num_classes):
    logits = np.full((len(labels), num_classes), -10.0)
    logits[np.arange(len(labels)), labels] = 10.0
    return logits


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        labels = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(perfect_logits(labels, 3), labels, 3)
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_misclassification_counted(self):
        logits = np.array([[10.0, 0.0], [10.0, 0.0]])
        labels = np.array([0, 1])
        matrix = confusion_matrix(logits, labels, 2)
        np.testing.assert_array_equal(matrix, [[1, 0], [1, 0]])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.zeros(3), np.zeros(3, dtype=int), 2)


class TestPerClassAccuracy:
    def test_values(self):
        logits = np.array([[10.0, 0], [10.0, 0], [0, 10.0], [10.0, 0]])
        labels = np.array([0, 0, 1, 1])
        recalls = per_class_accuracy(logits, labels, 2)
        np.testing.assert_allclose(recalls, [1.0, 0.5])

    def test_absent_class_is_nan(self):
        labels = np.array([0, 0])
        recalls = per_class_accuracy(perfect_logits(labels, 3), labels, 3)
        assert np.isnan(recalls[1]) and np.isnan(recalls[2])


class TestTopK:
    def test_top1_equals_accuracy(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(50, 10))
        labels = rng.integers(0, 10, size=50)
        top1 = top_k_accuracy(logits, labels, 1)
        assert top1 == pytest.approx(
            float((logits.argmax(axis=1) == labels).mean())
        )

    def test_full_k_is_one(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(20, 5))
        labels = rng.integers(0, 5, size=20)
        assert top_k_accuracy(logits, labels, 5) == 1.0

    def test_monotone_in_k(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(100, 10))
        labels = rng.integers(0, 10, size=100)
        values = [top_k_accuracy(logits, labels, k) for k in (1, 3, 5, 10)]
        assert values == sorted(values)

    def test_rejects_bad_k(self):
        with pytest.raises(ShapeError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), 4)


class TestMacroF1:
    def test_perfect_is_one(self):
        labels = np.array([0, 1, 2])
        assert macro_f1(perfect_logits(labels, 3), labels, 3) == 1.0

    def test_all_wrong_is_zero(self):
        logits = np.array([[0.0, 10.0], [0.0, 10.0]])
        labels = np.array([0, 0])
        assert macro_f1(logits, labels, 2) == 0.0


class TestClassificationReport:
    def test_keys_and_top5(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(40, 10))
        labels = rng.integers(0, 10, size=40)
        report = classification_report(logits, labels, 10)
        assert set(report) == {"accuracy", "macro_f1",
                               "per_class_accuracy", "top5_accuracy"}
        assert len(report["per_class_accuracy"]) == 10

    def test_no_top5_for_small_class_count(self):
        logits = np.zeros((4, 3))
        labels = np.zeros(4, dtype=int)
        assert "top5_accuracy" not in classification_report(logits, labels, 3)


def make_net(seed=0):
    rng = RngFactory(seed).make("ckpt")
    return Sequential(Linear(4, 6, rng=rng), BatchNorm1d(6),
                      Linear(6, 2, rng=rng))


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        source = make_net(seed=1)
        source(np.random.default_rng(0).normal(size=(8, 4)))  # move BN stats
        path = str(tmp_path / "model.npz")
        save_checkpoint(source, path, metadata={"round": "7", "seed": "1"})

        target = make_net(seed=2)
        metadata = load_checkpoint(target, path)
        np.testing.assert_array_equal(to_vector(source), to_vector(target))
        assert metadata == {"round": "7", "seed": "1"}

    def test_extension_added_automatically(self, tmp_path):
        source = make_net()
        base = str(tmp_path / "model")
        save_checkpoint(source, base)  # numpy appends .npz
        target = make_net(seed=9)
        load_checkpoint(target, base)
        np.testing.assert_array_equal(to_vector(source), to_vector(target))

    def test_metadata_only_read(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(make_net(), path, metadata={"note": "hello"})
        assert checkpoint_metadata(path) == {"note": "hello"}

    def test_architecture_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(make_net(), path)
        rng = RngFactory(0).make("other")
        other = Sequential(Linear(3, 3, rng=rng))
        with pytest.raises((ShapeError, KeyError)):
            load_checkpoint(other, path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(make_net(), str(tmp_path / "nope.npz"))

    def test_reserved_metadata_key_rejected(self, tmp_path):
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            save_checkpoint(make_net(), str(tmp_path / "m.npz"),
                            metadata={"__meta__:x": "1"})

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "model.npz")
        save_checkpoint(make_net(), path)
        assert checkpoint_metadata(path) == {}
