"""Tests for losses, the SGD optimizer and learning-rate schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, RngFactory, ShapeError
from repro.nn import (
    SGD,
    ConstantLR,
    InverseTimeDecay,
    Linear,
    StepDecay,
    accuracy,
    cross_entropy,
    l2_penalty,
    mse_loss,
    numerical_gradient,
    theorem1_schedule,
)


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        logits = np.zeros((4, 10))
        loss, _ = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10.0))

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss, _ = cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = cross_entropy(logits, labels)
        numeric = numerical_gradient(
            lambda z: cross_entropy(z, labels)[0], logits.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 3))
        _, grad = cross_entropy(logits, np.array([0, 1, 2, 0, 1]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_large_logits_do_not_overflow(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        loss, grad = cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_rejects_label_shape_mismatch(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            cross_entropy(np.zeros(3), np.zeros(3, dtype=int))


class TestMseLoss:
    def test_zero_at_target(self):
        x = np.ones((2, 2))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros((2, 2)))

    def test_known_value(self):
        loss, _ = mse_loss(np.array([2.0, 0.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, grad = mse_loss(pred, target)
        numeric = numerical_gradient(lambda p: mse_loss(p, target)[0], pred.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-7)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss(np.zeros(2), np.zeros(3))


class TestL2Penalty:
    def test_value_and_gradient(self):
        vec = np.array([3.0, 4.0])
        loss, grad = l2_penalty(vec, 0.1)
        assert loss == pytest.approx(0.5 * 0.1 * 25.0)
        np.testing.assert_allclose(grad, 0.1 * vec)


class TestAccuracy:
    def test_all_correct(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0

    def test_half_correct(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 1])) == 0.5


class TestSGD:
    def _make_layer(self):
        rng = RngFactory(0).make("sgd")
        return Linear(2, 2, rng=rng)

    def test_plain_step(self):
        layer = self._make_layer()
        before = layer.weight.data.copy()
        layer.weight.grad[...] = 1.0
        SGD(layer.parameters(), lr=0.1).step()
        np.testing.assert_allclose(layer.weight.data, before - 0.1)

    def test_weight_decay_shrinks_weights(self):
        layer = self._make_layer()
        layer.weight.data[...] = 1.0
        opt = SGD(layer.parameters(), lr=0.1, weight_decay=0.5)
        opt.step()  # grad is zero, only decay acts
        np.testing.assert_allclose(layer.weight.data, 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        layer = self._make_layer()
        layer.weight.data[...] = 0.0
        opt = SGD(layer.parameters(), lr=1.0, momentum=0.9)
        layer.weight.grad[...] = 1.0
        opt.step()  # velocity = 1, w = -1
        layer.weight.grad[...] = 1.0
        opt.step()  # velocity = 1.9, w = -2.9
        np.testing.assert_allclose(layer.weight.data, -2.9)

    def test_reset_state_clears_momentum(self):
        layer = self._make_layer()
        opt = SGD(layer.parameters(), lr=1.0, momentum=0.9)
        layer.weight.grad[...] = 1.0
        opt.step()
        opt.reset_state()
        layer.weight.data[...] = 0.0
        layer.weight.grad[...] = 1.0
        opt.step()
        np.testing.assert_allclose(layer.weight.data, -1.0)

    def test_minimizes_quadratic(self):
        """SGD on f(w) = ||w - target||^2 converges to the target."""
        layer = self._make_layer()
        target = np.array([[1.0, -2.0], [0.5, 3.0]])
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            layer.weight.grad[...] = 2.0 * (layer.weight.data - target)
            opt.step()
        np.testing.assert_allclose(layer.weight.data, target, atol=1e-6)

    def test_set_lr(self):
        layer = self._make_layer()
        opt = SGD(layer.parameters(), lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ConfigurationError):
            opt.set_lr(0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_rejects_nesterov_without_momentum(self):
        layer = self._make_layer()
        with pytest.raises(ConfigurationError):
            SGD(layer.parameters(), lr=0.1, nesterov=True)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.05)
        assert schedule(0) == schedule(1000) == 0.05

    def test_step_decay(self):
        schedule = StepDecay(1.0, step_size=10, factor=0.5)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_inverse_time_decay_formula(self):
        schedule = InverseTimeDecay(phi=2.0, gamma=8.0)
        assert schedule(0) == pytest.approx(0.25)
        assert schedule(8) == pytest.approx(0.125)

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLR(0.1)(-1)

    def test_theorem1_schedule_values(self):
        schedule = theorem1_schedule(mu=1.0, smoothness=2.0, local_steps=3)
        # gamma = max(8*2/1, 3) = 16, phi = 2
        assert schedule.gamma == 16.0
        assert schedule.phi == 2.0

    def test_theorem1_gamma_uses_local_steps_when_larger(self):
        schedule = theorem1_schedule(mu=8.0, smoothness=1.0, local_steps=5)
        # 8L/mu = 1 < E = 5
        assert schedule.gamma == 5.0

    @settings(max_examples=50, deadline=None)
    @given(
        mu=st.floats(0.01, 10.0),
        smoothness=st.floats(0.01, 10.0),
        local_steps=st.integers(1, 20),
        step=st.integers(0, 1000),
    )
    def test_theorem1_side_conditions(self, mu, smoothness, local_steps, step):
        """The Theorem 1 analysis requires eta non-increasing and
        eta_t <= 2 * eta_{t+E}."""
        if smoothness < mu:  # L >= mu always holds for real objectives
            smoothness = mu
        schedule = theorem1_schedule(mu, smoothness, local_steps)
        eta_t = schedule(step)
        assert schedule(step + 1) <= eta_t
        assert eta_t <= 2.0 * schedule(step + local_steps)
