"""Behavioral tests for individual layers (shapes, modes, validation)."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory, ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU6,
)


@pytest.fixture()
def rng():
    return RngFactory(3).make("layers")


class TestLinear:
    def test_output_shape(self, rng):
        assert Linear(4, 7, rng=rng)(np.zeros((5, 4))).shape == (5, 7)

    def test_rejects_wrong_input_width(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 7, rng=rng)(np.zeros((5, 3)))

    def test_rejects_3d_input(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 7, rng=rng)(np.zeros((5, 4, 1)))

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ConfigurationError):
            Linear(0, 3, rng=rng)

    def test_bias_applied(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer.weight.data[...] = 0.0
        layer.bias.data[...] = np.array([1.0, -2.0])
        out = layer(np.zeros((3, 2)))
        np.testing.assert_allclose(out, np.tile([1.0, -2.0], (3, 1)))


class TestConv2d:
    def test_output_shape_matches_formula(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 8, 16, 16)

    def test_matches_manual_convolution(self, rng):
        """1x1x3x3 conv on a known input, checked by hand."""
        layer = Conv2d(1, 1, 3, bias=False, rng=rng)
        layer.weight.data[...] = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx(float(np.sum(np.arange(9) ** 2)))

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            Conv2d(3, 8, 3, rng=rng)(np.zeros((2, 4, 8, 8)))

    def test_rejects_negative_padding(self, rng):
        with pytest.raises(ConfigurationError):
            Conv2d(3, 8, 3, padding=-1, rng=rng)

    def test_too_small_input_raises(self, rng):
        with pytest.raises(ShapeError):
            Conv2d(1, 1, 5, rng=rng)(np.zeros((1, 1, 3, 3)))


class TestDepthwiseConv2d:
    def test_output_shape(self, rng):
        layer = DepthwiseConv2d(6, 3, stride=2, padding=1, rng=rng)
        assert layer(np.zeros((2, 6, 8, 8))).shape == (2, 6, 4, 4)

    def test_channels_do_not_mix(self, rng):
        layer = DepthwiseConv2d(2, 3, padding=1, bias=False, rng=rng)
        x = np.zeros((1, 2, 5, 5))
        x[0, 0] = 1.0  # energy only in channel 0
        out = layer(x)
        assert np.any(out[0, 0] != 0.0)
        np.testing.assert_array_equal(out[0, 1], np.zeros((5, 5)))

    def test_equivalent_to_conv_with_identity_channel(self, rng):
        """A depthwise conv on 1 channel equals a standard 1->1 conv."""
        depthwise = DepthwiseConv2d(1, 3, padding=1, bias=False, rng=rng)
        standard = Conv2d(1, 1, 3, padding=1, bias=False, rng=rng)
        standard.weight.data[0, 0] = depthwise.weight.data[0]
        x = rng.normal(size=(2, 1, 6, 6))
        np.testing.assert_allclose(depthwise(x), standard(x))


class TestBatchNorm:
    def test_normalizes_batch_in_training(self, rng):
        layer = BatchNorm1d(3)
        out = layer(rng.normal(loc=5.0, scale=2.0, size=(64, 3)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.var(axis=0), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch_stats(self, rng):
        layer = BatchNorm1d(2, momentum=1.0)
        x = rng.normal(loc=3.0, size=(128, 2))
        layer(x)
        np.testing.assert_allclose(layer._buffers["running_mean"], x.mean(axis=0))

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm1d(2, momentum=1.0)
        x = rng.normal(size=(64, 2))
        layer(x)
        layer.eval()
        y = layer(np.zeros((4, 2)))
        expected = (0.0 - x.mean(axis=0)) / np.sqrt(x.var(axis=0, ddof=1) + layer.eps)
        np.testing.assert_allclose(y, np.tile(expected, (4, 1)), rtol=1e-6)

    def test_batchnorm2d_shape(self, rng):
        layer = BatchNorm2d(3)
        assert layer(rng.normal(size=(2, 3, 4, 4))).shape == (2, 3, 4, 4)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            BatchNorm1d(3, momentum=0.0)

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm2d(3)(rng.normal(size=(2, 4, 2, 2)))


class TestReLU6:
    def test_clips_at_six(self):
        layer = ReLU6()
        out = layer(np.array([[-1.0, 0.5, 7.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.5, 6.0]])

    def test_gradient_blocked_outside_linear_region(self):
        layer = ReLU6()
        layer(np.array([[-1.0, 0.5, 7.0]]))
        grad = layer.backward(np.ones((1, 3)))
        np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])


class TestPooling:
    def test_maxpool_picks_maximum(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avgpool_averages(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avgpool(self):
        x = np.arange(8, dtype=float).reshape(1, 2, 2, 2)
        out = GlobalAvgPool2d()(x)
        np.testing.assert_array_equal(out, [[1.5, 5.5]])

    def test_global_avgpool_rejects_2d(self):
        with pytest.raises(ShapeError):
            GlobalAvgPool2d()(np.zeros((2, 3)))


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = layer(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(x), x)

    def test_p_zero_is_identity_in_training(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(layer(x), x)

    def test_training_mode_zeroes_roughly_p_fraction(self, rng):
        layer = Dropout(0.25, rng=rng)
        out = layer(np.ones((100, 100)))
        dropped = float(np.mean(out == 0.0))
        assert 0.2 < dropped < 0.3

    def test_scaling_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer(np.ones((200, 200)))
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer(np.ones((10, 10)))
        grad = layer.backward(np.ones((10, 10)))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_rejects_p_one(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)
