"""GroupNorm unit tests plus property-based shape fuzzing of the layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, RngFactory, ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GroupNorm,
    Linear,
    MaxPool2d,
    check_layer_gradients,
)
from repro.nn.functional import conv_output_size


@pytest.fixture()
def rng():
    return RngFactory(21).make("gn")


class TestGroupNorm:
    def test_output_shape(self, rng):
        layer = GroupNorm(2, 6)
        assert layer(rng.normal(size=(3, 6, 4, 4))).shape == (3, 6, 4, 4)

    def test_normalizes_within_groups(self, rng):
        layer = GroupNorm(2, 4)
        out = layer(rng.normal(loc=7.0, scale=3.0, size=(2, 4, 8, 8)))
        grouped = out.reshape(2, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-10)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_no_batch_coupling(self, rng):
        """Unlike BatchNorm, a sample's output is independent of its
        batch-mates — the property that matters for federated non-IID data."""
        layer = GroupNorm(1, 3)
        x = rng.normal(size=(4, 3, 5, 5))
        full = layer(x)
        alone = layer(x[:1])
        np.testing.assert_allclose(full[0], alone[0], atol=1e-12)

    def test_batchnorm_is_batch_coupled(self, rng):
        """Contrast check: BatchNorm2d output does depend on batch-mates."""
        layer = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 5, 5))
        full = layer(x)
        alone = layer(x[:1])
        assert not np.allclose(full[0], alone[0])

    def test_identical_in_train_and_eval(self, rng):
        layer = GroupNorm(2, 4)
        x = rng.normal(size=(2, 4, 4, 4))
        train_out = layer(x)
        layer.eval()
        np.testing.assert_allclose(layer(x), train_out)

    def test_no_buffers(self):
        assert list(GroupNorm(2, 4).named_buffers()) == []

    def test_gradcheck(self, rng):
        layer = GroupNorm(2, 4)
        x = rng.normal(size=(2, 4, 3, 3))
        input_error, param_error = check_layer_gradients(layer, x)
        assert input_error < 1e-5
        assert param_error < 1e-5

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            GroupNorm(3, 4)  # not divisible
        with pytest.raises(ConfigurationError):
            GroupNorm(0, 4)
        with pytest.raises(ShapeError):
            GroupNorm(2, 4)(rng.normal(size=(2, 6, 3, 3)))


class TestShapeContractsFuzz:
    """Forward/backward shape contracts hold for arbitrary valid geometry."""

    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.integers(1, 4),
        in_features=st.integers(1, 16),
        out_features=st.integers(1, 16),
    )
    def test_linear_shapes(self, batch, in_features, out_features):
        rng = RngFactory(0).make(f"fuzz/{in_features}/{out_features}")
        layer = Linear(in_features, out_features, rng=rng)
        x = rng.normal(size=(batch, in_features))
        out = layer(x)
        assert out.shape == (batch, out_features)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.integers(1, 3),
        in_channels=st.integers(1, 4),
        out_channels=st.integers(1, 4),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 2),
        size=st.integers(3, 10),
    )
    def test_conv2d_shapes(self, batch, in_channels, out_channels, kernel,
                           stride, padding, size):
        if size + 2 * padding < kernel:
            return  # invalid geometry, covered by the error test below
        rng = RngFactory(0).make("fuzz/conv")
        layer = Conv2d(in_channels, out_channels, kernel, stride=stride,
                       padding=padding, rng=rng)
        x = rng.normal(size=(batch, in_channels, size, size))
        out = layer(x)
        expected = conv_output_size(size, kernel, stride, padding)
        assert out.shape == (batch, out_channels, expected, expected)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    @settings(max_examples=30, deadline=None)
    @given(
        channels=st.integers(1, 5),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        size=st.integers(4, 10),
    )
    def test_depthwise_shapes(self, channels, kernel, stride, size):
        rng = RngFactory(0).make("fuzz/dw")
        layer = DepthwiseConv2d(channels, kernel, stride=stride, padding=1,
                                rng=rng)
        x = rng.normal(size=(2, channels, size, size))
        out = layer(x)
        expected = conv_output_size(size, kernel, stride, 1)
        assert out.shape == (2, channels, expected, expected)
        assert layer.backward(np.ones_like(out)).shape == x.shape

    @settings(max_examples=30, deadline=None)
    @given(
        kernel=st.integers(1, 3),
        size=st.integers(4, 10),
        pool=st.sampled_from(["max", "avg"]),
    )
    def test_pooling_shapes(self, kernel, size, pool):
        rng = RngFactory(0).make("fuzz/pool")
        layer = MaxPool2d(kernel) if pool == "max" else AvgPool2d(kernel)
        x = rng.normal(size=(2, 3, size, size))
        out = layer(x)
        expected = conv_output_size(size, kernel, kernel, 0)
        assert out.shape == (2, 3, expected, expected)
        assert layer.backward(np.ones_like(out)).shape == x.shape

    @settings(max_examples=30, deadline=None)
    @given(
        groups=st.integers(1, 4),
        multiplier=st.integers(1, 3),
        size=st.integers(2, 8),
    )
    def test_groupnorm_shapes(self, groups, multiplier, size):
        channels = groups * multiplier
        rng = RngFactory(0).make("fuzz/gn")
        layer = GroupNorm(groups, channels)
        x = rng.normal(size=(2, channels, size, size))
        out = layer(x)
        assert out.shape == x.shape
        assert layer.backward(np.ones_like(out)).shape == x.shape
