"""Tests for Adam, gradient clipping and the extra LR schedules."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.nn import (
    Adam,
    ConstantLR,
    CosineAnnealing,
    LinearWarmup,
    Linear,
    clip_grad_norm,
)


def make_layer(seed=0):
    return Linear(3, 2, rng=RngFactory(seed).make("adam"))


class TestAdam:
    def test_minimizes_quadratic(self):
        layer = make_layer()
        target = np.array([[1.0, -2.0], [0.5, 3.0], [0.0, 1.0]])
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            layer.weight.grad[...] = 2.0 * (layer.weight.data - target)
            opt.step()
        np.testing.assert_allclose(layer.weight.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step is ~lr * sign(grad)."""
        layer = make_layer()
        layer.weight.data[...] = 0.0
        layer.weight.grad[...] = 5.0
        Adam(layer.parameters(), lr=0.1).step()
        np.testing.assert_allclose(layer.weight.data, -0.1, rtol=1e-6)

    def test_decoupled_weight_decay(self):
        layer = make_layer()
        layer.weight.data[...] = 1.0
        layer.weight.grad[...] = 0.0
        layer.bias.data[...] = 1.0
        opt = Adam(layer.parameters(), lr=0.1, weight_decay=0.5)
        opt.step()
        # grad = 0 -> only the decay acts: w <- w - lr * wd * w
        np.testing.assert_allclose(layer.weight.data, 1.0 - 0.1 * 0.5)

    def test_reset_state(self):
        layer = make_layer()
        opt = Adam(layer.parameters(), lr=0.1)
        layer.weight.grad[...] = 1.0
        opt.step()
        opt.reset_state()
        assert opt._step_count == 0
        assert all(np.all(m == 0) for m in opt._first_moment)

    def test_rejects_bad_hyperparameters(self):
        layer = make_layer()
        with pytest.raises(ConfigurationError):
            Adam(layer.parameters(), lr=0.1, betas=(1.0, 0.999))
        with pytest.raises(ConfigurationError):
            Adam(layer.parameters(), lr=0.1, eps=0.0)
        with pytest.raises(ConfigurationError):
            Adam(layer.parameters(), lr=0.1, weight_decay=-1.0)


class TestClipGradNorm:
    def test_no_clipping_below_threshold(self):
        layer = make_layer()
        layer.weight.grad[...] = 0.01
        before = layer.weight.grad.copy()
        norm = clip_grad_norm(layer.parameters(), max_norm=100.0)
        np.testing.assert_array_equal(layer.weight.grad, before)
        assert norm < 100.0

    def test_clips_to_max_norm(self):
        layer = make_layer()
        layer.weight.grad[...] = 100.0
        layer.bias.grad[...] = 100.0
        clip_grad_norm(layer.parameters(), max_norm=1.0)
        total = sum(float(np.sum(p.grad ** 2)) for p in layer.parameters())
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_returns_preclip_norm(self):
        layer = make_layer()
        layer.weight.grad[...] = 0.0
        layer.bias.grad[...] = np.array([3.0, 4.0])
        norm = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm == pytest.approx(5.0)

    def test_rejects_bad_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm(make_layer().parameters(), max_norm=0.0)


class TestCosineAnnealing:
    def test_endpoints(self):
        schedule = CosineAnnealing(1.0, total_steps=100, min_lr=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(500) == pytest.approx(0.1)  # clamped after the end

    def test_halfway(self):
        schedule = CosineAnnealing(1.0, total_steps=100)
        assert schedule(50) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        schedule = CosineAnnealing(1.0, total_steps=50)
        values = [schedule(step) for step in range(51)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CosineAnnealing(0.0, total_steps=10)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(1.0, total_steps=0)
        with pytest.raises(ConfigurationError):
            CosineAnnealing(1.0, total_steps=10, min_lr=2.0)


class TestLinearWarmup:
    def test_ramps_then_defers(self):
        schedule = LinearWarmup(ConstantLR(1.0), warmup_steps=10)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(4) == pytest.approx(0.5)
        assert schedule(10) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearWarmup(ConstantLR(1.0), warmup_steps=0)
