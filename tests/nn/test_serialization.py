"""Tests for flat-vector model serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import RngFactory, ShapeError
from repro.nn import (
    BatchNorm1d,
    Linear,
    ReLU,
    Sequential,
    clone_module_state,
    from_vector,
    gradient_vector,
    to_vector,
    vector_size,
)


def make_net(seed=0):
    rng = RngFactory(seed).make("init")
    return Sequential(Linear(3, 4, rng=rng), BatchNorm1d(4), ReLU(), Linear(4, 2, rng=rng))


class TestVectorRoundtrip:
    def test_size_includes_buffers(self):
        net = make_net()
        params = 3 * 4 + 4 + 4 + 4 + 4 * 2 + 2  # linear+bn weights/biases
        buffers = 4 + 4  # running mean/var
        assert vector_size(net) == params + buffers
        assert vector_size(net, include_buffers=False) == params

    def test_roundtrip_identity(self):
        net = make_net()
        net(np.random.default_rng(0).normal(size=(8, 3)))  # move BN stats
        vec = to_vector(net)
        from_vector(net, vec)
        np.testing.assert_array_equal(to_vector(net), vec)

    def test_vector_transfers_state_between_models(self):
        source = make_net(seed=1)
        source(np.random.default_rng(0).normal(size=(8, 3)))
        target = make_net(seed=2)
        from_vector(target, to_vector(source))
        x = np.random.default_rng(1).normal(size=(4, 3))
        source.eval()
        target.eval()
        np.testing.assert_allclose(source(x), target(x))

    def test_vector_is_a_copy(self):
        net = make_net()
        vec = to_vector(net)
        vec[...] = 7.0
        assert not np.allclose(to_vector(net), 7.0)

    def test_wrong_size_rejected(self):
        net = make_net()
        with pytest.raises(ShapeError):
            from_vector(net, np.zeros(vector_size(net) + 1))

    def test_without_buffers_preserves_running_stats(self):
        net = make_net()
        net(np.random.default_rng(0).normal(size=(8, 3)))
        stats_before = [buf.copy() for _, buf in net.named_buffers()]
        vec = to_vector(net, include_buffers=False)
        from_vector(net, np.zeros_like(vec), include_buffers=False)
        for before, (_, after) in zip(stats_before, net.named_buffers()):
            np.testing.assert_array_equal(before, after)
        assert np.all(to_vector(net, include_buffers=False) == 0.0)

    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(-5.0, 5.0))
    def test_roundtrip_arbitrary_vectors(self, scale):
        net = make_net()
        vec = np.full(vector_size(net), scale)
        from_vector(net, vec)
        np.testing.assert_array_equal(to_vector(net), vec)


class TestGradientVector:
    def test_length_excludes_buffers(self):
        net = make_net()
        assert gradient_vector(net).size == vector_size(net, include_buffers=False)

    def test_collects_gradients(self):
        net = make_net()
        x = np.random.default_rng(0).normal(size=(4, 3))
        out = net(x)
        net.backward(np.ones_like(out))
        grad = gradient_vector(net)
        assert np.any(grad != 0.0)

    def test_zero_after_zero_grad(self):
        net = make_net()
        out = net(np.random.default_rng(0).normal(size=(4, 3)))
        net.backward(np.ones_like(out))
        net.zero_grad()
        np.testing.assert_array_equal(gradient_vector(net), 0.0)


class TestCloneState:
    def test_clone_copies_everything(self):
        source = make_net(seed=5)
        source(np.random.default_rng(2).normal(size=(16, 3)))
        target = make_net(seed=6)
        clone_module_state(source, target)
        np.testing.assert_array_equal(to_vector(source), to_vector(target))

    def test_clone_then_diverge(self):
        source = make_net(seed=5)
        target = make_net(seed=6)
        clone_module_state(source, target)
        target.parameters()[0].data += 1.0
        assert not np.array_equal(to_vector(source), to_vector(target))
