"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.command == "fig2"
        assert args.attack == "random"

    def test_rejects_unknown_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--attack", "nope"])

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "paper", "fig4"])
        assert args.scale == "paper"


class TestCommands:
    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--attack", "zero"]) == 0
        output = capsys.readouterr().out
        assert "fig2/zero" in output
        assert "Fed-MS" in output

    def test_fig3_runs(self, capsys):
        assert main(["fig3", "--epsilon", "0.2"]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_fig4_runs(self, capsys):
        assert main(["fig4"]) == 0
        assert "tv_distance" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--alpha", "5"]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_comm_runs(self, capsys):
        assert main(["comm"]) == 0
        output = capsys.readouterr().out
        assert "sparse" in output
        assert "full" in output

    def test_convergence_runs(self, capsys):
        assert main(["convergence", "--rounds", "24"]) == 0
        assert "theorem1_bound" in capsys.readouterr().out

    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        assert "final" in capsys.readouterr().out

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert main(["--scale", "smoke", "fig4"]) == 0
        assert "'scale': 'smoke'" in capsys.readouterr().out
