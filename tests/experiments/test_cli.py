"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig2_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.command == "fig2"
        assert args.attack == "random"

    def test_rejects_unknown_attack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--attack", "nope"])

    def test_scale_flag(self):
        args = build_parser().parse_args(["--scale", "paper", "fig4"])
        assert args.scale == "paper"

    def test_backend_and_workers_flags(self):
        args = build_parser().parse_args(
            ["--backend", "process", "--workers", "4", "fig4"]
        )
        assert args.backend == "process"
        assert args.workers == 4

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "gpu", "fig4"])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.command == "perf"
        assert args.profile == "smoke"

    def test_codec_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["--codec", "topk(0.05)", "--codec", "int8", "fig2"]
        )
        assert args.codecs == ["topk(0.05)", "int8"]

    def test_comm_skip_codecs_flag(self):
        assert build_parser().parse_args(["comm"]).skip_codecs is False
        assert build_parser().parse_args(
            ["comm", "--skip-codecs"]).skip_codecs is True

    def test_comm_skip_population_flag(self):
        assert build_parser().parse_args(["comm"]).skip_population is False
        assert build_parser().parse_args(
            ["comm", "--skip-population"]).skip_population is True

    def test_population_defaults(self):
        args = build_parser().parse_args(["population"])
        assert args.command == "population"
        assert args.attack == "sign_flip"
        assert args.populations is None
        assert args.no_churn is False
        assert args.filter_rule is None

    def test_population_flags(self):
        args = build_parser().parse_args(
            ["population", "--population", "500", "--population", "2000",
             "--sample-fraction", "0.2", "--rounds", "5", "--no-churn",
             "--filter", "adaptive_trimmed_mean"]
        )
        assert args.populations == [500, 2000]
        assert args.sample_fraction == 0.2
        assert args.rounds == 5
        assert args.no_churn is True
        assert args.filter_rule == "adaptive_trimmed_mean"

    def test_population_rejects_unknown_filter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["population", "--filter", "nope"])

    def test_help_epilog_groups_commands(self):
        from repro.cli import HELP_EPILOG

        assert "paper figures" in HELP_EPILOG
        assert "extensions" in HELP_EPILOG
        assert "population" in HELP_EPILOG


class TestCommands:
    def test_fig2_runs(self, capsys):
        assert main(["fig2", "--attack", "zero"]) == 0
        output = capsys.readouterr().out
        assert "fig2/zero" in output
        assert "Fed-MS" in output

    def test_fig3_runs(self, capsys):
        assert main(["fig3", "--epsilon", "0.2"]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_fig4_runs(self, capsys):
        assert main(["fig4"]) == 0
        assert "tv_distance" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--alpha", "5"]) == 0
        assert "fig5" in capsys.readouterr().out

    def test_comm_runs(self, capsys):
        assert main(["comm"]) == 0
        output = capsys.readouterr().out
        assert "sparse" in output
        assert "full" in output
        # The codec x attack sweep is emitted alongside the cost table.
        assert "comm_codecs" in output
        assert "topk+int8" in output

    def test_comm_skip_codecs(self, capsys):
        assert main(["comm", "--skip-codecs"]) == 0
        output = capsys.readouterr().out
        assert "sparse" in output
        assert "comm_codecs" not in output

    def test_codec_flag_exports_environment(self, capsys, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_UPLOAD_CODECS", "")
        assert main(["--codec", "topk(0.2)", "--codec", "int8",
                     "fig4"]) == 0
        assert os.environ["REPRO_UPLOAD_CODECS"] == "topk(0.2),int8"

    def test_convergence_runs(self, capsys):
        assert main(["convergence", "--rounds", "24"]) == 0
        assert "theorem1_bound" in capsys.readouterr().out

    def test_backend_flag_exports_environment(self, capsys, monkeypatch):
        import os

        # setenv (not delenv) so monkeypatch restores the variables even
        # though main() overwrites them.
        monkeypatch.setenv("REPRO_EXECUTION_BACKEND", "serial")
        monkeypatch.setenv("REPRO_NUM_WORKERS", "0")
        assert main(["--backend", "thread", "--workers", "2", "fig4"]) == 0
        assert os.environ["REPRO_EXECUTION_BACKEND"] == "thread"
        assert os.environ["REPRO_NUM_WORKERS"] == "2"

    def test_perf_runs_and_writes_report(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["perf", "--profile", "smoke", "--output",
                     str(out)]) == 0
        output = capsys.readouterr().out
        assert "round-loop perf" in output
        assert out.exists()

    def test_perf_no_write(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["perf", "--no-write"]) == 0
        assert "rounds/s" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_round_loop.json").exists()

    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        assert "final" in capsys.readouterr().out

    def test_population_runs_at_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert main(["population"]) == 0
        output = capsys.readouterr().out
        assert "population_scale" in output
        assert "attacked" in output
        assert "peak_materialized_clients" in output

    def test_comm_emits_population_traffic(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert main(["comm"]) == 0
        output = capsys.readouterr().out
        assert "population_comm" in output
        assert "tier0_upload" in output
        assert "tier1_exchange" in output

    def test_comm_skip_population(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert main(["comm", "--skip-population"]) == 0
        assert "population_comm" not in capsys.readouterr().out

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert main(["--scale", "smoke", "fig4"]) == 0
        assert "'scale': 'smoke'" in capsys.readouterr().out
