"""Tests for the experiment harness (at smoke scale — the benchmarks run
the real reproductions at larger scales)."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.experiments import (
    SCALES,
    Curve,
    FigureResult,
    FigureWorkload,
    current_scale,
    format_curves,
    format_figure,
    format_rows,
    run_comm_cost,
    run_convergence_rate,
    run_fig2_attack_panel,
    run_fig3_epsilon_panel,
    run_fig4_heterogeneity,
    run_fig5_alpha_panel,
)

SMOKE = SCALES["smoke"]


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"tiny", "smoke", "reduced", "paper"}

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_scale().name == "paper"

    def test_default_is_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "reduced"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ConfigurationError):
            current_scale()

    def test_paper_scale_matches_table2(self):
        paper = SCALES["paper"]
        assert paper.num_clients == 50
        assert paper.num_servers == 10
        assert paper.num_rounds == 60


class TestWorkload:
    def test_flattened_shapes(self):
        workload = FigureWorkload(SMOKE, seed=0)
        assert workload.train.features.shape == (SMOKE.num_train, 3072)
        assert workload.test.features.shape == (SMOKE.num_test, 3072)

    def test_partitions_cover_all_clients(self):
        workload = FigureWorkload(SMOKE, seed=0)
        parts = workload.partitions(10.0)
        assert len(parts) == SMOKE.num_clients
        assert sum(len(p) for p in parts) == SMOKE.num_train

    def test_partitions_differ_by_alpha_and_tag(self):
        workload = FigureWorkload(SMOKE, seed=0)
        a = workload.partitions(10.0, tag="x")
        b = workload.partitions(10.0, tag="y")
        assert any(
            not np.array_equal(pa.indices, pb.indices) for pa, pb in zip(a, b)
        )

    def test_model_factory_builds_model(self):
        workload = FigureWorkload(SMOKE, seed=0)
        model = workload.model_factory()(np.random.default_rng(0))
        assert model(np.zeros((2, 3072))).shape == (2, 10)

    def test_synthetic_source_reported(self):
        assert FigureWorkload(SMOKE, seed=0).source == "synthetic"


class TestCurveAndResult:
    def test_curve_final_and_best(self):
        curve = Curve("x", [1, 2, 3], [0.1, 0.5, 0.3])
        assert curve.final_accuracy == 0.3
        assert curve.best_accuracy == 0.5

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            Curve("x", [], []).final_accuracy

    def test_result_lookup(self):
        result = FigureResult("f", curves=[Curve("a", [0], [0.1])])
        assert result.curve("a").final_accuracy == 0.1
        with pytest.raises(KeyError):
            result.curve("b")

    def test_to_dict(self):
        result = FigureResult("f", params={"x": 1},
                              curves=[Curve("a", [0], [0.1])])
        data = result.to_dict()
        assert data["figure_id"] == "f"
        assert data["curves"][0]["final_accuracy"] == 0.1


class TestFig2:
    def test_three_curves(self):
        result = run_fig2_attack_panel("random", scale=SMOKE)
        assert [c.label for c in result.curves] == \
            ["Fed-MS", "Fed-MS-", "Vanilla FL"]
        assert result.params["attack"] == "random"

    def test_defense_ordering_under_random(self):
        result = run_fig2_attack_panel("random", scale=SMOKE)
        assert result.curve("Fed-MS").final_accuracy >= \
            result.curve("Vanilla FL").final_accuracy


class TestFig3:
    def test_two_curves(self):
        result = run_fig3_epsilon_panel(0.2, scale=SMOKE)
        assert [c.label for c in result.curves] == ["Fed-MS", "Vanilla FL"]
        assert result.params["num_byzantine"] == 1

    def test_epsilon_zero_runs_without_attack(self):
        result = run_fig3_epsilon_panel(0.0, scale=SMOKE)
        assert result.params["num_byzantine"] == 0

    def test_rejects_epsilon_half(self):
        with pytest.raises(ConfigurationError):
            run_fig3_epsilon_panel(0.5, scale=SMOKE)


class TestFig4:
    def test_rows_per_alpha(self):
        result = run_fig4_heterogeneity((1.0, 1000.0), scale=SMOKE)
        assert [row["alpha"] for row in result.rows] == [1.0, 1000.0]

    def test_heterogeneity_monotone(self):
        result = run_fig4_heterogeneity((0.5, 1000.0), scale=SMOKE)
        assert result.rows[0]["tv_distance"] > result.rows[1]["tv_distance"]
        assert result.rows[0]["entropy"] < result.rows[1]["entropy"]

    def test_label_count_matrix_shape(self):
        result = run_fig4_heterogeneity((10.0,), scale=SMOKE,
                                        num_shown_clients=4)
        matrix = result.rows[0]["first_clients_label_counts"]
        assert len(matrix) == 4
        assert len(matrix[0]) == 10


class TestFig5:
    def test_single_curve(self):
        result = run_fig5_alpha_panel(10.0, scale=SMOKE)
        assert len(result.curves) == 1
        assert result.params["alpha"] == 10.0


class TestCommCost:
    def test_sparse_vs_full_factor_is_p(self):
        result = run_comm_cost(scale=SMOKE, num_rounds=2)
        sparse, full = result.rows
        assert sparse["strategy"] == "sparse"
        assert sparse["upload_messages_per_round"] == SMOKE.num_clients
        assert full["upload_messages_per_round"] == \
            SMOKE.num_clients * SMOKE.num_servers

    def test_measured_matches_expected(self):
        result = run_comm_cost(scale=SMOKE, num_rounds=2)
        for row in result.rows:
            assert row["upload_messages_per_round"] == row["expected_messages"]

    def test_byte_accounting_surfaced(self):
        result = run_comm_cost(scale=SMOKE, num_rounds=2)
        sparse, full = result.rows
        for row in result.rows:
            # Total = uploads + disseminations (lossless network).
            assert row["total_bytes"] == pytest.approx(
                2 * (row["upload_bytes_per_round"]
                     + row["dissemination_bytes_per_round"])
            )
            assert row["offered_bytes"] == row["total_bytes"]  # no drops
        # Upload volume scales with the strategy, dissemination does not.
        assert full["upload_bytes_per_round"] == \
            SMOKE.num_servers * sparse["upload_bytes_per_round"]
        assert full["dissemination_bytes_per_round"] == \
            sparse["dissemination_bytes_per_round"]


class TestConvergence:
    def test_suboptimality_below_bound_and_decaying(self):
        result = run_convergence_rate(num_rounds=36, seed=0)
        subopts = [row["suboptimality"] for row in result.rows]
        bounds = [row["theorem1_bound"] for row in result.rows]
        assert all(s <= b for s, b in zip(subopts, bounds))
        assert subopts[-1] < subopts[0] / 2


class TestFormatting:
    def test_format_curves(self):
        result = FigureResult("f", curves=[Curve("A", [1, 2], [0.1, 0.2])])
        text = format_curves(result)
        assert "A" in text
        assert "0.200" in text

    def test_format_rows(self):
        result = FigureResult("f", rows=[{"x": 1.5, "y": "hi",
                                          "skip": [1, 2]}])
        text = format_rows(result)
        assert "x" in text and "hi" in text
        assert "skip" not in text  # list-valued columns omitted

    def test_format_figure_combines(self):
        result = FigureResult("f", params={"p": 1},
                              curves=[Curve("A", [1], [0.5])],
                              rows=[{"x": 1}], notes="note!")
        text = format_figure(result)
        assert "=== f ===" in text
        assert "note!" in text

    def test_empty_results(self):
        assert "(no curves)" in format_curves(FigureResult("f"))
        assert "(no rows)" in format_rows(FigureResult("f"))
