"""Tests for multi-seed replication aggregation."""

import numpy as np
import pytest

from repro.common import ConfigurationError
from repro.experiments import Curve, FigureResult, replicate


def fake_experiment(seed):
    """Deterministic toy experiment: accuracy = 0.1 * seed at two rounds."""
    return FigureResult(
        "toy",
        curves=[
            Curve("A", [1, 2], [0.1 * seed, 0.1 * seed + 0.5]),
            Curve("B", [1, 2], [0.0, 0.2]),
        ],
    )


class TestReplicate:
    def test_mean_and_std(self):
        summary = replicate(fake_experiment, seeds=[1, 2, 3])
        curve = summary.curve("A")
        np.testing.assert_allclose(curve.mean_accuracies, [0.2, 0.7])
        expected_std = np.std([0.1, 0.2, 0.3])
        assert curve.std_accuracies[0] == pytest.approx(expected_std)
        assert curve.num_seeds == 3

    def test_constant_curve_has_zero_std(self):
        summary = replicate(fake_experiment, seeds=[1, 2, 3])
        np.testing.assert_allclose(summary.curve("B").std_accuracies, 0.0,
                                   atol=1e-12)

    def test_final_properties(self):
        summary = replicate(fake_experiment, seeds=[1, 3])
        curve = summary.curve("A")
        assert curve.final_mean == pytest.approx(0.7)
        low, high = curve.final_interval(num_std=1.0)
        assert low == pytest.approx(0.7 - curve.final_std)
        assert high == pytest.approx(0.7 + curve.final_std)

    def test_raw_results_retained(self):
        summary = replicate(fake_experiment, seeds=[1, 2])
        assert len(summary.raw_results) == 2
        assert summary.figure_id == "toy"

    def test_unknown_label(self):
        summary = replicate(fake_experiment, seeds=[1])
        with pytest.raises(KeyError):
            summary.curve("C")

    def test_to_dict(self):
        data = replicate(fake_experiment, seeds=[1, 2]).to_dict()
        assert data["figure_id"] == "toy"
        assert len(data["curves"]) == 2

    def test_rejects_empty_seeds(self):
        with pytest.raises(ConfigurationError):
            replicate(fake_experiment, seeds=[])

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ConfigurationError):
            replicate(fake_experiment, seeds=[1, 1])

    def test_rejects_mismatched_labels(self):
        def bad(seed):
            label = "A" if seed == 1 else "Z"
            return FigureResult("x", curves=[Curve(label, [1], [0.5])])

        with pytest.raises(ConfigurationError):
            replicate(bad, seeds=[1, 2])

    def test_rejects_mismatched_rounds(self):
        def bad(seed):
            rounds = [1] if seed == 1 else [2]
            return FigureResult("x", curves=[Curve("A", rounds, [0.5])])

        with pytest.raises(ConfigurationError):
            replicate(bad, seeds=[1, 2])

    def test_integration_with_real_experiment(self):
        """Replicating a real smoke-scale panel across two seeds works and
        produces nonzero spread."""
        from repro.experiments import SCALES, run_fig3_epsilon_panel

        summary = replicate(
            lambda seed: run_fig3_epsilon_panel(
                0.2, scale=SCALES["smoke"], seed=seed),
            seeds=[0, 1],
        )
        assert summary.curve("Fed-MS").num_seeds == 2
        assert all(s >= 0 for s in summary.curve("Fed-MS").std_accuracies)
