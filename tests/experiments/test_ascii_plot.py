"""Tests for the terminal chart renderer."""

import pytest

from repro.common import ConfigurationError
from repro.experiments import ascii_curve, ascii_curves


class TestAsciiCurves:
    def test_contains_markers_and_legend(self):
        chart = ascii_curves({
            "A": ([0, 1, 2], [0.0, 0.5, 1.0]),
            "B": ([0, 1, 2], [1.0, 0.5, 0.0]),
        })
        assert "o=A" in chart
        assert "x=B" in chart
        assert "o" in chart.splitlines()[0] or "o" in chart

    def test_axis_annotations(self):
        chart = ascii_curves({"A": ([0, 10], [0.0, 1.0])})
        assert "1.000" in chart
        assert "0.000" in chart
        assert "10" in chart

    def test_extremes_at_grid_edges(self):
        chart = ascii_curves({"A": ([0, 1], [0.0, 1.0])},
                             width=20, height=6)
        lines = chart.splitlines()
        assert "o" in lines[0]       # max value on the top row
        assert "o" in lines[5]       # min value on the bottom row

    def test_y_bounds_override(self):
        chart = ascii_curves({"A": ([0, 1], [0.4, 0.6])},
                             y_min=0.0, y_max=1.0)
        assert "1.000" in chart
        assert "0.000" in chart

    def test_values_outside_bounds_clamped(self):
        chart = ascii_curves({"A": ([0, 1], [-5.0, 5.0])},
                             y_min=0.0, y_max=1.0)
        assert isinstance(chart, str)  # no crash; points clamped to edges

    def test_constant_series_handled(self):
        chart = ascii_curves({"A": ([0, 1, 2], [0.5, 0.5, 0.5])})
        assert "o" in chart

    def test_single_point(self):
        chart = ascii_curves({"A": ([3], [0.7])})
        assert "o" in chart

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ascii_curves({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ascii_curves({"A": ([0, 1], [0.5])})

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            ascii_curves({"A": ([0], [0.5])}, width=3, height=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": ([0], [0.1]) for i in range(9)}
        with pytest.raises(ConfigurationError):
            ascii_curves(series)


class TestAsciiCurve:
    def test_wrapper(self):
        chart = ascii_curve([0, 1, 2], [0.1, 0.2, 0.3], label="acc")
        assert "o=acc" in chart

    def test_default_label(self):
        assert "o=series" in ascii_curve([0, 1], [0.1, 0.2])
