"""Tests for the common infrastructure (RNG streams, validation, errors)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    ConfigurationError,
    RngFactory,
    check_fraction,
    check_nonnegative_int,
    check_positive_int,
    require,
    stream_seed,
)


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(1, "a") == stream_seed(1, "a")

    def test_name_sensitivity(self):
        assert stream_seed(1, "a") != stream_seed(1, "b")

    def test_seed_sensitivity(self):
        assert stream_seed(1, "a") != stream_seed(2, "a")

    @given(seed=st.integers(0, 2**31), name=st.text(max_size=20))
    def test_always_nonnegative(self, seed, name):
        assert stream_seed(seed, name) >= 0


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(7)
        a = factory.make("x").random(5)
        b = factory.make("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_different_streams(self):
        factory = RngFactory(7)
        a = factory.make("x").random(5)
        b = factory.make("y").random(5)
        assert not np.array_equal(a, b)

    def test_reproducible_across_factories(self):
        a = RngFactory(7).make("x").random(5)
        b = RngFactory(7).make("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_namespacing(self):
        factory = RngFactory(7)
        child_a = factory.spawn("client/0")
        child_b = factory.spawn("client/1")
        assert child_a.root_seed != child_b.root_seed
        a = child_a.make("batches").random(3)
        b = child_b.make("batches").random(3)
        assert not np.array_equal(a, b)

    def test_make_many_count_and_independence(self):
        factory = RngFactory(7)
        gens = list(factory.make_many("client", 5))
        assert len(gens) == 5
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 5

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngFactory("seed")  # type: ignore[arg-type]

    def test_repr_mentions_seed(self):
        assert "7" in repr(RngFactory(7))


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "n")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "n")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "n")  # bools are not counts

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int(0, "n") == 0
        with pytest.raises(ConfigurationError):
            check_nonnegative_int(-1, "n")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.5, "f") == 0.5
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(-0.1, "f")
        with pytest.raises(ConfigurationError):
            check_fraction(1.1, "f")

    def test_check_fraction_exclusive_upper(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.5, "f", upper=0.5, inclusive_upper=False)
        assert check_fraction(0.49, "f", upper=0.5, inclusive_upper=False) == 0.49
