#!/usr/bin/env python3
"""Attack showdown: every Byzantine PS attack vs every model filter.

Reproduces the Fig. 2 phenomenology in one grid: for each server-side attack
(the paper's four plus this library's extensions) and each client-side model
filter (the paper's trimmed mean plus robust baselines), run a federated
simulation and report the final test accuracy.

The paper's claim appears as the trimmed-mean column staying green while the
plain-mean column collapses under the strong attacks.

Usage::

    python examples/attack_showdown.py [--rounds 15] [--model mlp|smallcnn]
    python examples/attack_showdown.py --attacks random noise --filters trimmed_mean mean
"""

import argparse

from repro import FedMSConfig, FedMSTrainer, make_attack, make_rule
from repro.attacks import available_attacks
from repro.aggregation import available_rules
from repro.common import RngFactory
from repro.data import ArrayDataset, dirichlet_partition, make_synthetic_cifar10
from repro.models import MLP, SmallCNN


def build_workload(seed: int, use_images: bool):
    rngs = RngFactory(seed)
    train, test = make_synthetic_cifar10(1500, 300, rng=rngs.make("data"))
    if not use_images:
        train = ArrayDataset(train.features.reshape(len(train), -1),
                             train.labels)
        test = ArrayDataset(test.features.reshape(len(test), -1), test.labels)
    partitions = dirichlet_partition(train, 20, alpha=10.0,
                                     rng=rngs.make("partition"))
    return partitions, test


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--model", choices=("mlp", "smallcnn"), default="mlp",
                        help="mlp is fast; smallcnn exercises the conv stack")
    parser.add_argument("--attacks", nargs="+",
                        default=["noise", "random", "safeguard", "backward"],
                        choices=available_attacks())
    parser.add_argument("--filters", nargs="+",
                        default=["trimmed_mean", "median", "mean"],
                        choices=available_rules())
    args = parser.parse_args()

    use_images = args.model == "smallcnn"
    partitions, test = build_workload(args.seed, use_images)
    config = FedMSConfig(num_clients=20, num_servers=5, num_byzantine=1,
                         trim_ratio=0.2, eval_clients=1, seed=args.seed)

    if use_images:
        def model_factory(rng):
            return SmallCNN(channels=8, rng=rng)
    else:
        def model_factory(rng):
            return MLP(3072, (64,), 10, rng=rng)

    header = f"{'attack':>22s} | " + " | ".join(
        f"{name:>16s}" for name in args.filters
    )
    print(header)
    print("-" * len(header))
    for attack_name in args.attacks:
        cells = []
        for filter_name in args.filters:
            rule = make_rule(filter_name,
                             trim_ratio=config.resolved_trim_ratio,
                             num_byzantine=config.num_byzantine)
            trainer = FedMSTrainer(
                config,
                model_factory=model_factory,
                client_datasets=partitions,
                test_dataset=test,
                attack=make_attack(attack_name),
                filter_rule=rule,
                flatten_inputs=False,
            )
            history = trainer.run(args.rounds, eval_every=args.rounds)
            cells.append(f"{history.final_accuracy:>16.3f}")
        print(f"{attack_name:>22s} | " + " | ".join(cells))

    print("\n(final test accuracy after "
          f"{args.rounds} rounds; K=20, P=5, B=1, beta=0.2)")


if __name__ == "__main__":
    main()
