#!/usr/bin/env python3
"""Data-heterogeneity study (the paper's Fig. 4 + Fig. 5 in one script).

For each Dirichlet concentration ``D_alpha``, prints the label distribution
of the first clients (Fig. 4), scalar heterogeneity indices, and the
accuracy trajectory of Fed-MS under a 20% Noise attack (Fig. 5).

Usage::

    python examples/heterogeneity_study.py [--alphas 1 5 10 1000] [--rounds 15]
"""

import argparse

import numpy as np

from repro import FedMSConfig, FedMSTrainer, make_attack
from repro.common import RngFactory
from repro.data import (
    ArrayDataset,
    dirichlet_partition,
    label_distribution_matrix,
    make_synthetic_cifar10,
    mean_client_entropy,
    mean_total_variation_distance,
)
from repro.models import MLP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alphas", nargs="+", type=float,
                        default=[1.0, 5.0, 10.0, 1000.0])
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--clients", type=int, default=20)
    parser.add_argument("--show-clients", type=int, default=6,
                        help="how many clients' label histograms to print")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rngs = RngFactory(args.seed)
    train, test = make_synthetic_cifar10(2000, 400, rng=rngs.make("data"))
    flat_train = ArrayDataset(train.features.reshape(len(train), -1),
                              train.labels)
    flat_test = ArrayDataset(test.features.reshape(len(test), -1),
                             test.labels)

    finals = {}
    for alpha in args.alphas:
        partitions = dirichlet_partition(
            flat_train, args.clients, alpha=alpha,
            rng=rngs.make(f"partition/{alpha}"), min_samples_per_client=2,
        )

        # --- Fig. 4: the partition itself ---------------------------------
        print(f"\n=== D_alpha = {alpha:g} ===")
        matrix = label_distribution_matrix(partitions[:args.show_clients], 10)
        print(f"label counts of the first {args.show_clients} clients "
              f"(rows=clients, cols=classes):")
        for row in matrix.astype(int):
            print("   " + " ".join(f"{count:>4d}" for count in row))
        tv = mean_total_variation_distance(partitions, 10)
        entropy = mean_client_entropy(partitions, 10)
        print(f"mean TV distance to global law: {tv:.3f} "
              f"(0 = IID); mean label entropy: {entropy:.3f} "
              f"(max {np.log(10):.3f})")

        # --- Fig. 5: Fed-MS under attack on this partition -----------------
        config = FedMSConfig(num_clients=args.clients, num_servers=5,
                             num_byzantine=1, trim_ratio=0.2,
                             eval_clients=1, seed=args.seed)
        trainer = FedMSTrainer(
            config,
            model_factory=lambda rng: MLP(3072, (64,), 10, rng=rng),
            client_datasets=partitions,
            test_dataset=flat_test,
            attack=make_attack("noise"),
        )
        history = trainer.run(args.rounds,
                              eval_every=max(args.rounds // 3, 1))
        curve = ", ".join(
            f"r{r}={a:.3f}" for r, a in zip(history.evaluated_rounds,
                                            history.accuracies)
        )
        print(f"Fed-MS under 20% Noise attack: {curve}")
        finals[alpha] = history.final_accuracy

    print("\n=== summary (final accuracy by D_alpha) ===")
    for alpha, accuracy in finals.items():
        print(f"  D_alpha={alpha:>7g}: {accuracy:.3f}")
    print("higher D_alpha (more IID data) should converge faster and finish "
          "higher, as in the paper's Fig. 5.")


if __name__ == "__main__":
    main()
