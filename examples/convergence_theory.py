#!/usr/bin/env python3
"""Theorem 1 live: measured convergence vs the closed-form O(1/T) bound.

Builds a strongly convex softmax-regression FEEL problem, measures every
constant the theory needs (mu, L, G, sigma_k, Gamma, ||w0 - w*||), runs
Fed-MS with the prescribed learning-rate schedule under a Noise attack, and
prints measured suboptimality against the Theorem 1 bound round by round,
plus the five-term Delta decomposition.

Usage::

    python examples/convergence_theory.py [--rounds 120] [--byzantine 1]
"""

import argparse

from repro.experiments import run_convergence_rate
from repro.theory import ProblemConstants, delta_decomposition


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=120)
    parser.add_argument("--clients", type=int, default=20)
    parser.add_argument("--servers", type=int, default=5)
    parser.add_argument("--byzantine", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    result = run_convergence_rate(
        num_clients=args.clients,
        num_servers=args.servers,
        num_byzantine=args.byzantine,
        num_rounds=args.rounds,
        seed=args.seed,
    )

    params = result.params
    print("measured problem constants:")
    print(f"  mu (strong convexity)  = {params['mu']:.4g}")
    print(f"  L (smoothness)         = {params['smoothness']:.4g}")
    print(f"  G (gradient bound)     = {params['gradient_bound']:.4g}")
    print(f"  Gamma (heterogeneity)  = {params['gamma_heterogeneity']:.4g}")
    print(f"  gamma = max(8L/mu, E)  = {params['gamma']:.4g}")

    constants = ProblemConstants(
        mu=params["mu"],
        smoothness=params["smoothness"],
        gradient_bound=params["gradient_bound"],
        sigma_sq=[0.0] * args.clients,  # display-only reconstruction
        gamma_heterogeneity=params["gamma_heterogeneity"],
        num_clients=args.clients,
        num_servers=args.servers,
        num_byzantine=args.byzantine,
        local_steps=3,
    )
    print("\nDelta decomposition (sigma terms omitted in this display):")
    for name, value in delta_decomposition(constants).items():
        print(f"  {name:>22s} = {value:.4g}")

    print(f"\n{'round':>6s} {'step':>6s} {'F(w)-F*':>12s} "
          f"{'Thm-1 bound':>12s} {'t x subopt':>12s}")
    for row in result.rows:
        scaled = row["suboptimality"] * (params["gamma"] + row["global_step"])
        print(f"{row['round']:>6d} {row['global_step']:>6d} "
              f"{row['suboptimality']:>12.3e} {row['theorem1_bound']:>12.3e} "
              f"{scaled:>12.4f}")
    print("\nO(1/T): the last column should stay bounded; the measured "
          "suboptimality must sit below the bound at every step.")


if __name__ == "__main__":
    main()
