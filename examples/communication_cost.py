#!/usr/bin/env python3
"""Communication-cost demo: sparse vs multi vs full uploading.

Measures (from the simulated network's per-message accounting) what each
upload strategy costs per round, next to the accuracy it reaches —
the Section IV-A trade-off: sparse uploading matches single-PS FedAvg's
K-message cost while full uploading pays K x P for no useful gain.

Usage::

    python examples/communication_cost.py [--rounds 10]
"""

import argparse

from repro import FedMSConfig, FedMSTrainer, make_attack
from repro.common import RngFactory
from repro.data import ArrayDataset, dirichlet_partition, make_synthetic_cifar10
from repro.models import MLP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rngs = RngFactory(args.seed)
    train, test = make_synthetic_cifar10(1500, 300, rng=rngs.make("data"))
    flat_train = ArrayDataset(train.features.reshape(len(train), -1),
                              train.labels)
    flat_test = ArrayDataset(test.features.reshape(len(test), -1),
                             test.labels)
    partitions = dirichlet_partition(flat_train, 20, alpha=10.0,
                                     rng=rngs.make("partition"))

    print(f"{'strategy':>10s} {'msgs/round':>12s} {'MB/round':>10s} "
          f"{'final accuracy':>15s}")
    for strategy, uploads in (("sparse", 1), ("multi", 3), ("full", 1)):
        config = FedMSConfig(
            num_clients=20, num_servers=5, num_byzantine=1,
            upload_strategy=strategy, uploads_per_client=uploads,
            trim_ratio=0.2, eval_clients=1, seed=args.seed,
        )
        trainer = FedMSTrainer(
            config,
            model_factory=lambda rng: MLP(3072, (64,), 10, rng=rng),
            client_datasets=partitions,
            test_dataset=flat_test,
            attack=make_attack("noise"),
        )
        history = trainer.run(args.rounds, eval_every=args.rounds)
        messages = history.total_upload_messages / args.rounds
        megabytes = history.total_upload_bytes / args.rounds / 1e6
        label = strategy if strategy != "multi" else f"multi({uploads})"
        print(f"{label:>10s} {messages:>12.0f} {megabytes:>10.1f} "
              f"{history.final_accuracy:>15.3f}")

    print("\nsparse = K messages/round (single-PS FedAvg parity); "
          "full = K x P for roughly the same accuracy.")


if __name__ == "__main__":
    main()
