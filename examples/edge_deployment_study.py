#!/usr/bin/env python3
"""Edge-deployment study: architecture, stragglers and packet loss.

Compares the two multi-server architectures (Fed-MS's upload-anywhere +
client-side filter vs the related work's grouped/hierarchical FL) under the
same Byzantine attack, then layers on edge realism: heavy-tailed link
latency (simulated round wall-clock) and message loss.

Usage::

    python examples/edge_deployment_study.py [--rounds 12]
"""

import argparse

import numpy as np

from repro import FedMSConfig, FedMSTrainer, make_attack
from repro.common import RngFactory
from repro.core import HierarchicalTrainer, SparseUpload, FullUpload
from repro.data import ArrayDataset, dirichlet_partition, make_synthetic_cifar10
from repro.models import MLP
from repro.nn import vector_size
from repro.simulation import LogNormalLatency, Network, round_time


def build_workload(seed):
    rngs = RngFactory(seed)
    train, test = make_synthetic_cifar10(1500, 300, rng=rngs.make("data"))
    flat_train = ArrayDataset(train.features.reshape(len(train), -1),
                              train.labels)
    flat_test = ArrayDataset(test.features.reshape(len(test), -1),
                             test.labels)
    partitions = dirichlet_partition(flat_train, 20, alpha=10.0,
                                     rng=rngs.make("partition"))
    return partitions, flat_test


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    partitions, test = build_workload(args.seed)
    config = FedMSConfig(num_clients=20, num_servers=5, num_byzantine=1,
                         trim_ratio=0.2, eval_clients=2, seed=args.seed)

    def model_factory(rng):
        return MLP(3072, (64,), 10, rng=rng)

    # --- 1. architecture comparison under the Random attack ----------------
    print("=== architecture comparison (K=20, P=5, B=1, random attack) ===")
    fed_ms = FedMSTrainer(
        config, model_factory=model_factory, client_datasets=partitions,
        test_dataset=test, attack=make_attack("random"),
    )
    fed_ms_history = fed_ms.run(args.rounds, eval_every=args.rounds)
    hierarchical = HierarchicalTrainer(
        config, model_factory=model_factory, client_datasets=partitions,
        test_dataset=test, attack=make_attack("random"),
    )
    hier_history = hierarchical.run(args.rounds, eval_every=args.rounds)
    print(f"Fed-MS final accuracy:        {fed_ms_history.final_accuracy:.3f}")
    print(f"hierarchical final accuracy:  {hier_history.final_accuracy:.3f}"
          f"  (the Byzantine PS's group is fully controlled)")

    # --- 2. simulated round wall-clock under heavy-tailed links ------------
    print("\n=== simulated round time (lognormal latency, median 50 ms) ===")
    model_bytes = vector_size(model_factory(np.random.default_rng(0))) * 8
    latency = LogNormalLatency(median=0.05, sigma=0.75)
    rng = RngFactory(args.seed).make("latency")
    for name, strategy in (("sparse", SparseUpload()), ("full", FullUpload())):
        assignment = strategy.assign(20, 5, rng=rng)
        total, parts = round_time(
            assignment, model_bytes=model_bytes, latency=latency,
            num_servers=5, rng=rng, compute_seconds=0.5,
        )
        print(f"  {name:>7s} upload: {total:6.2f} s/round "
              f"(upload stage {parts['upload']:.2f} s, "
              f"dissemination {parts['dissemination']:.2f} s)")

    # --- 3. packet loss ------------------------------------------------------
    print("\n=== Fed-MS accuracy under message loss (noise attack) ===")
    for loss_rate in (0.0, 0.2, 0.4):
        network = (
            Network(drop_probability=loss_rate,
                    rng=RngFactory(args.seed).make(f"net/{loss_rate}"))
            if loss_rate else Network()
        )
        trainer = FedMSTrainer(
            config, model_factory=model_factory, client_datasets=partitions,
            test_dataset=test, attack=make_attack("noise", scale=0.05),
            network=network,
        )
        history = trainer.run(args.rounds, eval_every=args.rounds)
        print(f"  loss {loss_rate:.0%}: accuracy "
              f"{history.final_accuracy:.3f} "
              f"({network.stats.dropped_total} messages dropped)")


if __name__ == "__main__":
    main()
