#!/usr/bin/env python3
"""Quickstart: Fed-MS surviving a Byzantine parameter-server attack.

Runs two small federated simulations on the synthetic CIFAR-10 stand-in —
one protected by Fed-MS's trimmed-mean model filter, one undefended — with
20% of the edge parameter servers running the Random attack, and prints the
accuracy trajectories side by side.

Usage::

    python examples/quickstart.py [--rounds 20] [--attack random] [--seed 0]
"""

import argparse

from repro import FedMSConfig, FedMSTrainer, make_attack, make_rule
from repro.attacks import available_attacks
from repro.common import RngFactory
from repro.data import ArrayDataset, dirichlet_partition, make_synthetic_cifar10
from repro.models import MLP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=20,
                        help="number of global training rounds")
    parser.add_argument("--attack", default="random",
                        choices=available_attacks(),
                        help="Byzantine PS behavior")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # --- build the workload ------------------------------------------------
    rngs = RngFactory(args.seed)
    train, test = make_synthetic_cifar10(2000, 400, rng=rngs.make("data"))
    flat_train = ArrayDataset(train.features.reshape(len(train), -1),
                              train.labels)
    flat_test = ArrayDataset(test.features.reshape(len(test), -1),
                             test.labels)
    partitions = dirichlet_partition(flat_train, 20, alpha=10.0,
                                     rng=rngs.make("partition"))

    # --- topology: K=20 clients, P=5 edge PSs, B=1 Byzantine ---------------
    config = FedMSConfig(num_clients=20, num_servers=5, num_byzantine=1,
                         seed=args.seed)
    print(f"K={config.num_clients} clients, P={config.num_servers} PSs, "
          f"B={config.num_byzantine} Byzantine ({args.attack} attack), "
          f"beta={config.resolved_trim_ratio:.2f}")

    def run(label, filter_rule):
        trainer = FedMSTrainer(
            config,
            model_factory=lambda rng: MLP(3072, (64,), 10, rng=rng),
            client_datasets=partitions,
            test_dataset=flat_test,
            attack=make_attack(args.attack),
            filter_rule=filter_rule,
        )
        print(f"\n--- {label} ---")
        history = trainer.run(
            args.rounds,
            eval_every=max(args.rounds // 5, 1),
            progress=lambda record: record.test_accuracy is not None and print(
                f"  round {record.round_index:>3d}: "
                f"loss={record.train_loss:.3f} "
                f"accuracy={record.test_accuracy:.3f}"
            ),
        )
        return history

    defended = run("Fed-MS (trimmed-mean filter)", filter_rule=None)
    undefended = run("Vanilla FL (no defense)", make_rule("mean"))

    print("\n=== result ===")
    print(f"Fed-MS final accuracy:     {defended.final_accuracy:.3f}")
    print(f"Vanilla FL final accuracy: {undefended.final_accuracy:.3f}")
    print(f"uploads per round:         "
          f"{defended.records[0].upload_messages} (= K, sparse uploading)")


if __name__ == "__main__":
    main()
